package flight

import (
	"fmt"
	"sync"
)

// OnlineDetector runs the offline Detect pathology checks incrementally,
// one Record at a time, so a live solve can surface delta oscillation,
// alpha collapse, and set-point escape *while they are happening* (the obs
// /events stream forwards them as "finding" events). The state machines
// mirror detectOscillation/detectRun exactly, with one intentional timing
// difference: a finding fires as soon as its run first crosses the
// detection threshold (that is when an operator can still act on it)
// rather than when the run ends, and fires once per run. Observing a
// healthy trajectory allocates nothing; a firing allocates only its
// Finding.
//
// A nil *OnlineDetector is a no-op. Attach one to a Recorder with
// SetOnline; the recorder resets it on SetHeader and feeds it every
// Append.
type OnlineDetector struct {
	mu   sync.Mutex
	base DetectOptions // as given; re-defaulted against each header
	opt  DetectOptions
	emit func(Finding)

	// Delta-oscillation run (sign-alternation of AppliedDelta).
	oscStartK int64
	oscCount  int
	oscFlips  int
	oscFired  bool
	prevSign  int

	collapse onlineRun
	escape   onlineRun
}

// onlineRun tracks one maximal run of condition-matching records.
type onlineRun struct {
	startK int64
	n      int
	fired  bool
}

func (r *onlineRun) observe(ok bool, k int64, minRun int, fire func(first, last int64, n int)) {
	if !ok {
		r.n, r.fired = 0, false
		return
	}
	if r.n == 0 {
		r.startK = k
	}
	r.n++
	if r.n >= minRun && !r.fired {
		r.fired = true
		fire(r.startK, k, r.n)
	}
}

// NewOnlineDetector returns a detector with the given tuning (zero value
// selects the same defaults as Detect) that calls emit for each finding.
// emit must be safe to call from whatever goroutine drives the recorder.
func NewOnlineDetector(opt DetectOptions, emit func(Finding)) *OnlineDetector {
	return &OnlineDetector{base: opt, opt: opt.withDefaults(Header{}), emit: emit}
}

// Reset rearms every state machine for a new solve and re-derives the
// bootstrap window from the log header.
func (d *OnlineDetector) Reset(h Header) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.opt = d.base.withDefaults(h)
	d.oscStartK, d.oscCount, d.oscFlips, d.oscFired, d.prevSign = 0, 0, 0, false, 0
	d.collapse = onlineRun{}
	d.escape = onlineRun{}
	d.mu.Unlock()
}

// Observe feeds one iteration record through all three detectors.
func (d *OnlineDetector) Observe(rec *Record) {
	if d == nil {
		return
	}
	var fired []Finding
	d.mu.Lock()
	opt := d.opt

	// Oscillation: the incremental twin of detectOscillation. Zero steps
	// end the run; a same-sign step restarts the window at this record.
	s := sign(rec.AppliedDelta)
	switch {
	case s == 0 || d.prevSign == 0:
		d.oscCount, d.oscFlips, d.oscFired = 0, 0, false
		if s != 0 {
			d.oscStartK, d.oscCount = rec.K, 1
		}
	case s != d.prevSign:
		d.oscFlips++
		d.oscCount++
		if d.oscFlips >= opt.MinOscillation && !d.oscFired {
			d.oscFired = true
			fired = append(fired, Finding{
				Kind: FindingDeltaOscillation, FirstK: d.oscStartK, LastK: rec.K,
				Count: d.oscCount,
				Detail: fmt.Sprintf("Δδ sign alternated %d times over iterations %d–%d",
					d.oscFlips, d.oscStartK, rec.K),
			})
		}
	default: // same sign: monotone motion, restart the window here
		d.oscStartK, d.oscCount, d.oscFlips, d.oscFired = rec.K, 1, 0, false
	}
	d.prevSign = s

	afterBootstrap := rec.K >= int64(opt.Bootstrap)
	d.collapse.observe(
		afterBootstrap && rec.Bisect.Steps > 0 && rec.Alpha <= opt.AlphaFloor,
		rec.K, opt.MinCollapse,
		func(first, last int64, n int) {
			fired = append(fired, Finding{
				Kind: FindingAlphaCollapse, FirstK: first, LastK: last, Count: n,
				Detail: fmt.Sprintf("α sat at its %.0e clamp floor for %d iterations (%d–%d); δ steps are open-loop",
					opt.AlphaFloor, n, first, last),
			})
		})
	escaped := false
	if rec.SetPoint > 0 {
		x2 := float64(rec.X2)
		escaped = x2 > rec.SetPoint*opt.EscapeBand || x2 < rec.SetPoint/opt.EscapeBand
	}
	d.escape.observe(afterBootstrap && escaped, rec.K, opt.MinEscape,
		func(first, last int64, n int) {
			fired = append(fired, Finding{
				Kind: FindingSetPointEscape, FirstK: first, LastK: last, Count: n,
				Detail: fmt.Sprintf("X² stayed outside the [P/%.0f, %.0f·P] band for %d iterations (%d–%d)",
					opt.EscapeBand, opt.EscapeBand, n, first, last),
			})
		})
	d.mu.Unlock()

	if d.emit != nil {
		for _, f := range fired {
			d.emit(f)
		}
	}
}
