package flight

import "math"

// diffFields enumerates the per-record scalar fields run-diff compares.
// Comparison is on exact bits (math.Float64bits), not epsilon closeness:
// two runs of a deterministic configuration must match exactly, and the
// first bit of drift is precisely the signal run-diff exists to localize.
var diffFields = []struct {
	name string
	get  func(*Record) float64
}{
	{"x1", func(r *Record) float64 { return float64(r.X1) }},
	{"x2", func(r *Record) float64 { return float64(r.X2) }},
	{"x3", func(r *Record) float64 { return float64(r.X3) }},
	{"x4", func(r *Record) float64 { return float64(r.X4) }},
	{"farLen", func(r *Record) float64 { return float64(r.FarLen) }},
	{"farSize", func(r *Record) float64 { return float64(r.FarSize) }},
	{"p", func(r *Record) float64 { return r.SetPoint }},
	{"deltaIn", func(r *Record) float64 { return r.DeltaIn }},
	{"rawDelta", func(r *Record) float64 { return r.RawDelta }},
	{"deltaOut", func(r *Record) float64 { return r.DeltaOut }},
	{"appliedDelta", func(r *Record) float64 { return r.AppliedDelta }},
	{"d", func(r *Record) float64 { return r.D }},
	{"alpha", func(r *Record) float64 { return r.Alpha }},
	{"advance.theta", func(r *Record) float64 { return r.Advance.Theta }},
	{"bisect.theta", func(r *Record) float64 { return r.Bisect.Theta }},
	{"edgeBalanced", func(r *Record) float64 { return b2f(r.EdgeBalanced) }},
	{"simNs", func(r *Record) float64 { return float64(r.SimTimeNs) }},
	{"energyJ", func(r *Record) float64 { return r.EnergyJ }},
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// FieldDiff reports one field's values in the two runs at a divergent
// iteration, plus the maximum absolute difference seen across all compared
// iterations.
type FieldDiff struct {
	Field  string
	A, B   float64 // values at the first divergent iteration
	MaxAbs float64 // max |A−B| across all compared iterations
}

// DiffReport is the result of aligning two flight logs iteration by
// iteration.
type DiffReport struct {
	LenA, LenB int
	Compared   int // iterations compared: min(LenA, LenB)

	// FirstDivergence is the iteration index of the first record where any
	// compared field differs in bits, or -1 when every compared iteration
	// matches exactly. A length mismatch with identical common prefixes
	// keeps FirstDivergence at -1 but is visible via LenA != LenB.
	FirstDivergence int

	// Fields holds every compared field that differs anywhere, ordered as
	// compared, with values at the first iteration where that field
	// diverged and its max absolute delta.
	Fields []FieldDiff

	// DivergentIters counts iterations with at least one differing field.
	DivergentIters int

	// TrackErrA/B are each run's mean set-point tracking error
	// |X²−P|/P (0 when the log has no set-point), the figure-of-merit the
	// paper evaluates controllers by — so a diff ends with "which run
	// tracked better", not only "where they split".
	TrackErrA, TrackErrB float64
}

// Identical reports whether the two logs matched bit-for-bit over their
// common length and had equal lengths.
func (d *DiffReport) Identical() bool {
	return d.FirstDivergence < 0 && d.LenA == d.LenB
}

// DiffLogs aligns two flight logs iteration by iteration and reports the
// first divergence and per-field deltas. Records are matched by position
// (both logs must be contiguous from iteration 0 for positions to mean the
// same iteration; see Log.Contiguous).
func DiffLogs(a, b *Log) *DiffReport {
	d := &DiffReport{
		LenA:            len(a.Records),
		LenB:            len(b.Records),
		FirstDivergence: -1,
	}
	d.Compared = min(d.LenA, d.LenB)
	d.TrackErrA = meanTrackingError(a)
	d.TrackErrB = meanTrackingError(b)

	type fieldState struct {
		firstK int
		a, b   float64
		maxAbs float64
	}
	states := make([]fieldState, len(diffFields))
	for i := range states {
		states[i].firstK = -1
	}

	for k := 0; k < d.Compared; k++ {
		ra, rb := &a.Records[k], &b.Records[k]
		diverged := false
		for i, f := range diffFields {
			va, vb := f.get(ra), f.get(rb)
			if math.Float64bits(va) == math.Float64bits(vb) {
				continue
			}
			diverged = true
			st := &states[i]
			if st.firstK < 0 {
				st.firstK, st.a, st.b = k, va, vb
			}
			if abs := math.Abs(va - vb); abs > st.maxAbs {
				st.maxAbs = abs
			}
		}
		if diverged {
			d.DivergentIters++
			if d.FirstDivergence < 0 {
				d.FirstDivergence = k
			}
		}
	}
	for i, st := range states {
		if st.firstK >= 0 {
			d.Fields = append(d.Fields, FieldDiff{
				Field: diffFields[i].name, A: st.a, B: st.b, MaxAbs: st.maxAbs,
			})
		}
	}
	return d
}

// meanTrackingError computes the mean |X²−P|/P over the log, the same
// formula as metrics.Profile.TrackingError, using each record's own P so
// power-capped runs are scored against the set-point in effect at the time.
func meanTrackingError(l *Log) float64 {
	var sum float64
	n := 0
	for i := range l.Records {
		rec := &l.Records[i]
		if rec.SetPoint <= 0 {
			continue
		}
		sum += math.Abs(float64(rec.X2)-rec.SetPoint) / rec.SetPoint
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
