package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL serializes the log as versioned JSONL: the first line is the
// Header object (schema + version), every following line one Record in
// iteration order. Floats are encoded in Go's shortest round-tripping
// decimal form, so a log read back with ReadJSONL carries bit-identical
// float64 values — the property the replay gate depends on.
//
// Serialization allocates freely; it runs on demand (CLI export, the obs
// server's /flight endpoint), never on the solve path.
func WriteJSONL(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(l.Header); err != nil {
		return fmt.Errorf("flight: encode header: %w", err)
	}
	for i := range l.Records {
		if err := enc.Encode(&l.Records[i]); err != nil {
			return fmt.Errorf("flight: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteJSONL streams the recorder's current log; it satisfies the obs
// server's flight-source interface so a live solve can be inspected over
// HTTP (/flight) without pausing it.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Log())
}

// maxLineBytes bounds one JSONL line; a record line is a few hundred bytes,
// so 1 MiB leaves two orders of magnitude of headroom.
const maxLineBytes = 1 << 20

// ReadJSONL parses a flight log serialized by WriteJSONL, validating the
// schema identifier and rejecting versions newer than this build supports.
func ReadJSONL(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("flight: read header: %w", err)
		}
		return nil, fmt.Errorf("flight: empty log")
	}
	var l Log
	if err := json.Unmarshal(sc.Bytes(), &l.Header); err != nil {
		return nil, fmt.Errorf("flight: parse header: %w", err)
	}
	if l.Header.Schema != Schema {
		return nil, fmt.Errorf("flight: not a flight log (schema %q, want %q)", l.Header.Schema, Schema)
	}
	if l.Header.Version > SchemaVersion {
		return nil, fmt.Errorf("flight: log version %d is newer than supported version %d", l.Header.Version, SchemaVersion)
	}
	for line := 2; sc.Scan(); line++ {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("flight: parse record at line %d: %w", line, err)
		}
		l.Records = append(l.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flight: read: %w", err)
	}
	return &l, nil
}
