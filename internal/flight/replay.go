package flight

// Replay result types. The replay executor itself lives in internal/core
// (core.ReplayFlight) because re-executing the δ decisions requires the
// real Controller; this package owns the log-shaped types so CLI and tests
// can consume reports without importing the algorithm layer.

// ReplayMismatch reports one field of one iteration where the re-executed
// controller diverged from the recorded trajectory. Want/Got are compared
// on exact float64 bits; any mismatch means the controller is
// nondeterministic (or the log was produced by different code).
type ReplayMismatch struct {
	K     int64   `json:"k"`
	Field string  `json:"field"`
	Want  float64 `json:"want"` // recorded value
	Got   float64 `json:"got"`  // re-executed value
}

// MaxReplayMismatches bounds the mismatches a report retains; a truly
// diverged replay mismatches on nearly every field of every iteration, and
// the first few localize the bug.
const MaxReplayMismatches = 100

// ReplayReport is the outcome of re-executing a flight log.
type ReplayReport struct {
	Iterations int              `json:"iterations"`
	Mismatches []ReplayMismatch `json:"mismatches,omitempty"`
	// Truncated is set when more than MaxReplayMismatches occurred.
	Truncated bool `json:"truncated,omitempty"`
}

// OK reports whether the replay reproduced the log bit-identically.
func (r *ReplayReport) OK() bool { return len(r.Mismatches) == 0 && !r.Truncated }

// Add records a mismatch, respecting the retention bound.
func (r *ReplayReport) Add(m ReplayMismatch) {
	if len(r.Mismatches) >= MaxReplayMismatches {
		r.Truncated = true
		return
	}
	r.Mismatches = append(r.Mismatches, m)
}
