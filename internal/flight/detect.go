package flight

import (
	"fmt"
	"math"
)

// FindingKind classifies a detected controller pathology.
type FindingKind string

const (
	// FindingDeltaOscillation: the applied Δδ alternated sign for many
	// consecutive iterations — the controller is bouncing across the
	// set-point instead of settling (typically α mis-estimated, so each
	// correction overshoots).
	FindingDeltaOscillation FindingKind = "delta-oscillation"
	// FindingAlphaCollapse: the BISECT-MODEL estimate sat at its clamp
	// floor after bootstrap — Eq. 6's (P/d − X⁴)/α division is running on
	// the defensive clamp, not a learned density, so δ steps are maximal
	// and essentially open-loop.
	FindingAlphaCollapse FindingKind = "alpha-collapse"
	// FindingSetPointEscape: X² stayed outside the [P/band, P·band]
	// envelope for a sustained window after bootstrap — the controller is
	// not tracking (input can't supply P parallelism, or the model
	// diverged).
	FindingSetPointEscape FindingKind = "setpoint-escape"
)

// Finding is one structured detector result: a pathology kind, the
// iteration window it covers, and a human-readable summary.
type Finding struct {
	Kind   FindingKind `json:"kind"`
	FirstK int64       `json:"firstK"`
	LastK  int64       `json:"lastK"`
	Count  int         `json:"count"` // iterations involved
	Detail string      `json:"detail"`
}

// DetectOptions tunes the divergence detectors; the zero value selects the
// documented defaults.
type DetectOptions struct {
	// MinOscillation is the minimum number of consecutive Δδ sign
	// alternations to flag (default 6).
	MinOscillation int
	// AlphaFloor is the BISECT-MODEL clamp floor (default 1e-3, matching
	// Controller.Alpha); MinCollapse consecutive at-floor iterations after
	// bootstrap flag a collapse (default 8).
	AlphaFloor  float64
	MinCollapse int
	// EscapeBand is the multiplicative tracking envelope around P (default
	// 8: X² outside [P/8, 8P] counts as escaped); MinEscape consecutive
	// escaped iterations after bootstrap flag a finding (default 8).
	EscapeBand float64
	MinEscape  int
	// Bootstrap is the number of leading iterations exempt from the
	// alpha-collapse and escape detectors (default: the log header's
	// BootstrapIters, or 5).
	Bootstrap int
}

func (o DetectOptions) withDefaults(hdr Header) DetectOptions {
	if o.MinOscillation <= 0 {
		o.MinOscillation = 6
	}
	if o.AlphaFloor <= 0 {
		o.AlphaFloor = 1e-3
	}
	if o.MinCollapse <= 0 {
		o.MinCollapse = 8
	}
	if o.EscapeBand <= 1 {
		o.EscapeBand = 8
	}
	if o.MinEscape <= 0 {
		o.MinEscape = 8
	}
	if o.Bootstrap <= 0 {
		o.Bootstrap = hdr.BootstrapIters
		if o.Bootstrap <= 0 {
			o.Bootstrap = 5
		}
	}
	return o
}

// Detect scans a flight log for controller pathologies and returns them as
// structured findings ordered by first iteration. An empty slice means the
// detectors saw a healthy trajectory.
func Detect(l *Log, opt DetectOptions) []Finding {
	opt = opt.withDefaults(l.Header)
	var out []Finding
	out = append(out, detectOscillation(l, opt)...)
	out = append(out, detectAlphaCollapse(l, opt)...)
	out = append(out, detectEscape(l, opt)...)
	return out
}

// detectOscillation finds maximal runs of consecutive sign alternations of
// the applied Δδ. Zero steps end a run (holding is not oscillating).
func detectOscillation(l *Log, opt DetectOptions) []Finding {
	var out []Finding
	runStart, flips, prevSign := -1, 0, 0
	flush := func(endIdx int) {
		if flips >= opt.MinOscillation {
			first, last := l.Records[runStart].K, l.Records[endIdx].K
			out = append(out, Finding{
				Kind: FindingDeltaOscillation, FirstK: first, LastK: last,
				Count: endIdx - runStart + 1,
				Detail: fmt.Sprintf("Δδ sign alternated %d times over iterations %d–%d",
					flips, first, last),
			})
		}
		runStart, flips, prevSign = -1, 0, 0
	}
	for i := range l.Records {
		s := sign(l.Records[i].AppliedDelta)
		switch {
		case s == 0 || prevSign == 0:
			if runStart >= 0 {
				flush(i - 1)
			}
			if s != 0 {
				runStart = i
			}
		case s != prevSign:
			flips++
		default: // same sign: monotone motion, restart the window here
			flush(i - 1)
			runStart = i
		}
		prevSign = s
	}
	if runStart >= 0 {
		flush(len(l.Records) - 1)
	}
	return out
}

func detectAlphaCollapse(l *Log, opt DetectOptions) []Finding {
	return detectRun(l, opt.MinCollapse, opt.Bootstrap,
		func(r *Record) bool { return r.Bisect.Steps > 0 && r.Alpha <= opt.AlphaFloor },
		func(first, last int64, n int) Finding {
			return Finding{
				Kind: FindingAlphaCollapse, FirstK: first, LastK: last, Count: n,
				Detail: fmt.Sprintf("α sat at its %.0e clamp floor for %d iterations (%d–%d); δ steps are open-loop",
					opt.AlphaFloor, n, first, last),
			}
		})
}

func detectEscape(l *Log, opt DetectOptions) []Finding {
	return detectRun(l, opt.MinEscape, opt.Bootstrap,
		func(r *Record) bool {
			if r.SetPoint <= 0 {
				return false
			}
			x2 := float64(r.X2)
			return x2 > r.SetPoint*opt.EscapeBand || x2 < r.SetPoint/opt.EscapeBand
		},
		func(first, last int64, n int) Finding {
			return Finding{
				Kind: FindingSetPointEscape, FirstK: first, LastK: last, Count: n,
				Detail: fmt.Sprintf("X² stayed outside the [P/%.0f, %.0f·P] band for %d iterations (%d–%d)",
					opt.EscapeBand, opt.EscapeBand, n, first, last),
			}
		})
}

// detectRun reports maximal runs of >= minRun consecutive records matching
// cond, skipping the first bootstrap iterations.
func detectRun(l *Log, minRun, bootstrap int, cond func(*Record) bool, mk func(first, last int64, n int) Finding) []Finding {
	var out []Finding
	runStart := -1
	flush := func(endIdx int) {
		if runStart >= 0 && endIdx-runStart+1 >= minRun {
			out = append(out, mk(l.Records[runStart].K, l.Records[endIdx].K, endIdx-runStart+1))
		}
		runStart = -1
	}
	for i := range l.Records {
		if l.Records[i].K < int64(bootstrap) || !cond(&l.Records[i]) {
			flush(i - 1)
			continue
		}
		if runStart < 0 {
			runStart = i
		}
	}
	flush(len(l.Records) - 1)
	return out
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	case math.IsNaN(x):
		return 0
	}
	return 0
}
