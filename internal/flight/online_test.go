package flight

import "testing"

// replayOnline drives a log through a Recorder with an online detector
// attached, the same path a live solve takes (SetHeader resets the state
// machines, Append feeds each record), and collects everything that fires.
func replayOnline(l *Log) []Finding {
	var out []Finding
	d := NewOnlineDetector(DetectOptions{}, func(f Finding) { out = append(out, f) })
	r := NewRecorder(len(l.Records) + 1)
	r.SetOnline(d)
	r.SetHeader(l.Header)
	for k := range l.Records {
		r.Append(&l.Records[k])
	}
	return out
}

// TestOnlineMatchesOffline checks the online detectors against their
// offline twins on each injected pathology: every offline finding has an
// online counterpart of the same kind whose window opens at the same
// iteration. The online LastK may be earlier — it fires the moment the run
// crosses the detection threshold, not when the run ends — but never
// later, and it must fire exactly once per run.
func TestOnlineMatchesOffline(t *testing.T) {
	osc := mkLog(30)
	for k := 10; k < 24; k++ {
		mag := 4.0
		if k%2 == 0 {
			mag = -4
		}
		osc.Records[k].AppliedDelta = mag
	}
	collapse := mkLog(30)
	for k := 12; k < 26; k++ {
		collapse.Records[k].Alpha = 1e-3
		collapse.Records[k].Bisect.Steps = int64(k)
	}
	escape := mkLog(40)
	for k := 20; k < 36; k++ {
		escape.Records[k].X2 = int64(escape.Records[k].SetPoint) * 100
	}

	for _, tc := range []struct {
		name string
		l    *Log
		kind FindingKind
	}{
		{"oscillation", osc, FindingDeltaOscillation},
		{"collapse", collapse, FindingAlphaCollapse},
		{"escape", escape, FindingSetPointEscape},
	} {
		offline := Detect(tc.l, DetectOptions{})
		online := replayOnline(tc.l)
		var off *Finding
		for i := range offline {
			if offline[i].Kind == tc.kind {
				off = &offline[i]
			}
		}
		if off == nil {
			t.Fatalf("%s: offline detector silent: %+v", tc.name, offline)
		}
		var hits []Finding
		for _, f := range online {
			if f.Kind == tc.kind {
				hits = append(hits, f)
			}
		}
		if len(hits) != 1 {
			t.Fatalf("%s: online fired %d times, want once: %+v", tc.name, len(hits), hits)
		}
		on := hits[0]
		if on.FirstK < off.FirstK || on.FirstK > off.LastK {
			t.Errorf("%s: online window opens at %d, offline run is [%d,%d]",
				tc.name, on.FirstK, off.FirstK, off.LastK)
		}
		if on.LastK > off.LastK {
			t.Errorf("%s: online fired at %d, after the offline run end %d",
				tc.name, on.LastK, off.LastK)
		}
		if on.Detail == "" {
			t.Errorf("%s: online finding has no detail", tc.name)
		}
	}
}

// TestOnlineHealthyAndReset: a healthy trajectory fires nothing, SetHeader
// rearms the state machines between solves, and a nil detector is a no-op
// on both the recorder and direct-call paths.
func TestOnlineHealthyAndReset(t *testing.T) {
	healthy := mkLog(40)
	for k := range healthy.Records {
		healthy.Records[k].X2 = 500
	}
	if fs := replayOnline(healthy); len(fs) != 0 {
		t.Fatalf("online detector fired on a healthy log: %+v", fs)
	}

	// A pathological solve followed by SetHeader then a healthy solve: the
	// second solve must stay silent (state machines rearmed, not carrying
	// the first solve's run lengths).
	escape := mkLog(40)
	for k := 20; k < 36; k++ {
		escape.Records[k].X2 = int64(escape.Records[k].SetPoint) * 100
	}
	var fired []Finding
	d := NewOnlineDetector(DetectOptions{}, func(f Finding) { fired = append(fired, f) })
	r := NewRecorder(64)
	r.SetOnline(d)
	r.SetHeader(escape.Header)
	for k := range escape.Records {
		r.Append(&escape.Records[k])
	}
	n := len(fired)
	if n == 0 {
		t.Fatal("pathological solve did not fire")
	}
	r.SetHeader(healthy.Header)
	for k := range healthy.Records {
		r.Append(&healthy.Records[k])
	}
	if len(fired) != n {
		t.Fatalf("healthy solve after reset fired %d new findings", len(fired)-n)
	}

	var nilD *OnlineDetector
	nilD.Reset(Header{})
	nilD.Observe(&Record{K: 1, AppliedDelta: 5})
	r2 := NewRecorder(4)
	r2.SetOnline(nil)
	r2.Append(&Record{K: 0})
}
