package flight

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// mkLog builds a contiguous n-record log with distinctive float payloads.
func mkLog(n int) *Log {
	l := &Log{Header: Header{
		Schema: Schema, Version: SchemaVersion, Algorithm: "selftuning",
		Vertices: 100, Edges: 400, SetPoint: 500,
		InitialD: 4.25, InitialAlpha: 1, BootstrapIters: 5,
	}}
	for k := 0; k < n; k++ {
		l.Records = append(l.Records, Record{
			K:  int64(k),
			X1: int64(k + 1), X2: int64(8 * (k + 1)), X4: int64(k % 7),
			SetPoint: 500,
			DeltaIn:  float64(k) + 0.1, RawDelta: float64(k) + 0.2,
			DeltaOut: float64(k) + 0.2, AppliedDelta: 0.1,
			JumpMin: -1,
			D:       4 + 1/float64(k+3), Alpha: 1 + 1/float64(k+5),
		})
	}
	return l
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	if r.Cap() != 4 || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("fresh recorder: cap=%d len=%d dropped=%d", r.Cap(), r.Len(), r.Dropped())
	}
	for k := 0; k < 6; k++ {
		r.Append(&Record{K: int64(k)})
	}
	if r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("after 6 appends into cap 4: len=%d dropped=%d, want 4 and 2", r.Len(), r.Dropped())
	}
	recs := r.Snapshot(nil)
	for i, want := range []int64{2, 3, 4, 5} {
		if recs[i].K != want {
			t.Fatalf("snapshot[%d].K = %d, want %d (oldest-first after wrap)", i, recs[i].K, want)
		}
	}
	if l := r.Log(); l.Contiguous() {
		t.Fatal("wrapped log reported contiguous")
	}

	// SetHeader resets the ring for recorder reuse across solves.
	r.SetHeader(Header{Algorithm: "nearfar"})
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("after SetHeader: len=%d dropped=%d, want empty", r.Len(), r.Dropped())
	}
	if h := r.Header(); h.Schema != Schema || h.Version != SchemaVersion || h.Algorithm != "nearfar" {
		t.Fatalf("header not stamped: %+v", h)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.SetHeader(Header{})
	r.Append(&Record{})
	if r.Len() != 0 || r.Cap() != 0 || r.Dropped() != 0 || len(r.Snapshot(nil)) != 0 {
		t.Fatal("nil recorder not a no-op")
	}
	if l := r.Log(); len(l.Records) != 0 {
		t.Fatal("nil recorder produced records")
	}
}

// TestJSONLRoundTripBitExact: serialization uses shortest round-tripping
// decimals, so awkward floats (tiny, huge, negative-zero, long mantissas)
// must come back bit-identical.
func TestJSONLRoundTripBitExact(t *testing.T) {
	l := mkLog(3)
	l.Records[0].Alpha = 1e-3
	l.Records[0].Advance = ModelState{Theta: math.Pi, GBar: -1e-300, VBar: 2.2250738585072014e-308, HBar: 1e300, Tau: 7.000000000000001, Mu: 0.1, Steps: 9}
	l.Records[1].AppliedDelta = math.Copysign(0, -1)
	l.Records[2].EnergyJ = 1.0000000000000002

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != l.Header {
		t.Fatalf("header changed: %+v != %+v", got.Header, l.Header)
	}
	if d := DiffLogs(l, got); !d.Identical() {
		t.Fatalf("round trip not bit-identical: first divergence %d, fields %+v", d.FirstDivergence, d.Fields)
	}
	// DiffLogs does not compare every field; spot-check the raw structs of
	// the awkward records too.
	if got.Records[0].Advance != l.Records[0].Advance {
		t.Fatalf("model state changed: %+v != %+v", got.Records[0].Advance, l.Records[0].Advance)
	}
	if math.Signbit(got.Records[1].AppliedDelta) != true {
		t.Fatal("negative zero lost its sign")
	}
}

func TestReadJSONLValidation(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"schema":"other","version":1}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	newer := `{"schema":"` + Schema + `","version":` + "99" + `}`
	if _, err := ReadJSONL(strings.NewReader(newer)); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future version: err = %v, want newer-version rejection", err)
	}
	if _, err := ReadJSONL(strings.NewReader(`{"schema":"` + Schema + `","version":1}` + "\nnot json\n")); err == nil {
		t.Fatal("malformed record line accepted")
	}
}

func TestDiffLogs(t *testing.T) {
	a, b := mkLog(10), mkLog(10)
	if d := DiffLogs(a, b); !d.Identical() || d.FirstDivergence != -1 || d.DivergentIters != 0 {
		t.Fatalf("identical logs: %+v", d)
	}

	// Perturb one field at iteration 4 and another at 7.
	b.Records[4].DeltaOut += 1e-12
	b.Records[7].X2 += 3
	b.Records[7].DeltaOut += 2e-12
	d := DiffLogs(a, b)
	if d.Identical() {
		t.Fatal("perturbed logs reported identical")
	}
	if d.FirstDivergence != 4 {
		t.Fatalf("first divergence %d, want 4", d.FirstDivergence)
	}
	if d.DivergentIters != 2 {
		t.Fatalf("divergent iters %d, want 2", d.DivergentIters)
	}
	byName := map[string]FieldDiff{}
	for _, f := range d.Fields {
		byName[f.Field] = f
	}
	fd, ok := byName["deltaOut"]
	if !ok {
		t.Fatalf("deltaOut missing from fields %+v", d.Fields)
	}
	if fd.MaxAbs < 1.9e-12 {
		t.Fatalf("deltaOut maxAbs %g, want the larger (2e-12) excursion", fd.MaxAbs)
	}
	if _, ok := byName["x2"]; !ok {
		t.Fatalf("x2 missing from fields %+v", d.Fields)
	}
	// X2 diverged → the tracking errors must differ between the runs.
	if d.TrackErrA == d.TrackErrB { //lint:ignore floatcmp exact inequality is the assertion
		t.Fatal("tracking errors equal despite X2 divergence")
	}

	// Length mismatch with an identical prefix: no divergence, unequal.
	c := mkLog(8)
	d = DiffLogs(a, c)
	if d.FirstDivergence != -1 || d.Identical() || d.Compared != 8 {
		t.Fatalf("prefix logs: %+v", d)
	}
}

func TestDetectOscillation(t *testing.T) {
	l := mkLog(30)
	for k := 10; k < 24; k++ { // 13 consecutive sign alternations
		mag := 4.0
		if k%2 == 0 {
			mag = -4
		}
		l.Records[k].AppliedDelta = mag
	}
	fs := Detect(l, DetectOptions{})
	var found *Finding
	for i := range fs {
		if fs[i].Kind == FindingDeltaOscillation {
			found = &fs[i]
		}
	}
	if found == nil {
		t.Fatalf("oscillation not detected: %+v", fs)
	}
	if found.FirstK > 11 || found.LastK < 23 {
		t.Fatalf("oscillation window [%d,%d] does not cover the injected run", found.FirstK, found.LastK)
	}
}

func TestDetectAlphaCollapse(t *testing.T) {
	l := mkLog(30)
	for k := 12; k < 26; k++ {
		l.Records[k].Alpha = 1e-3
		l.Records[k].Bisect.Steps = int64(k)
	}
	fs := Detect(l, DetectOptions{})
	ok := false
	for _, f := range fs {
		if f.Kind == FindingAlphaCollapse && f.Count >= 14 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("alpha collapse not detected: %+v", fs)
	}

	// At-floor during bootstrap (Bisect.Steps == 0) must not flag.
	l2 := mkLog(30)
	for k := 12; k < 26; k++ {
		l2.Records[k].Alpha = 1e-3
	}
	for _, f := range Detect(l2, DetectOptions{}) {
		if f.Kind == FindingAlphaCollapse {
			t.Fatalf("collapse flagged with an untrained model: %+v", f)
		}
	}
}

func TestDetectSetPointEscape(t *testing.T) {
	l := mkLog(40)
	for k := 20; k < 36; k++ {
		l.Records[k].X2 = int64(l.Records[k].SetPoint) * 100
	}
	fs := Detect(l, DetectOptions{})
	ok := false
	for _, f := range fs {
		if f.Kind == FindingSetPointEscape && f.FirstK >= 20 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("set-point escape not detected: %+v", fs)
	}

	// Healthy tracking: X2 == P everywhere in mkLog after the ramp; make it
	// exact and expect silence.
	l2 := mkLog(40)
	for k := range l2.Records {
		l2.Records[k].X2 = 500
	}
	for _, f := range Detect(l2, DetectOptions{}) {
		if f.Kind == FindingSetPointEscape {
			t.Fatalf("escape flagged on perfect tracking: %+v", f)
		}
	}
}

func TestDashboardSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDashboard(&buf, mkLog(200)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"selftuning", "X2", "delta", "alpha-hat", "P=500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	// Empty log renders without panicking.
	buf.Reset()
	if err := WriteDashboard(&buf, &Log{Header: Header{Schema: Schema}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no records") {
		t.Fatalf("empty-log dashboard: %s", buf.String())
	}
}
