package flight

import (
	"fmt"
	"io"
	"math"
	"strings"

	"energysssp/internal/metrics"
)

// Dashboard rendering: a fixed-width ASCII view of a flight log for
// terminals and logs — the Figure-1 convergence narrative (δ trajectory, X²
// against the set-point, model estimates) without leaving the shell.

// dashCols is the plot width; longer runs are bucketed (each column shows
// the mean of its iteration bucket).
const dashCols = 72

// dashLevels are the intensity glyphs, low to high.
const dashLevels = " .:-=+*#%@"

// WriteDashboard renders an ASCII convergence dashboard for the log:
// header summary, tracking statistics, sparkline rows for X², δ, d̂ and α̂,
// and the detector findings.
func WriteDashboard(w io.Writer, l *Log) error {
	hdr := l.Header
	n := len(l.Records)
	if _, err := fmt.Fprintf(w, "flight %s v%d: %s  |V|=%d |E|=%d src=%d  iterations=%d\n",
		hdr.Schema, hdr.Version, hdr.Algorithm, hdr.Vertices, hdr.Edges, hdr.Source, n); err != nil {
		return err
	}
	if hdr.Label != "" {
		if _, err := fmt.Fprintf(w, "label: %s\n", hdr.Label); err != nil {
			return err
		}
	}
	if n == 0 {
		_, err := fmt.Fprintln(w, "(no records)")
		return err
	}

	if hdr.SetPoint > 0 {
		last := &l.Records[n-1]
		conv := convergenceIter(l)
		convStr := "never"
		if conv >= 0 {
			convStr = fmt.Sprintf("k=%d", conv)
		}
		if _, err := fmt.Fprintf(w, "P=%g  tracking error mean=%.3f  model convergence: %s  final d̂=%.3g α̂=%.3g\n",
			hdr.SetPoint, meanTrackingError(l), convStr, last.D, last.Alpha); err != nil {
			return err
		}
	}
	if last := &l.Records[n-1]; last.SimTimeNs > 0 {
		if _, err := fmt.Fprintf(w, "simulated: time=%.3fms energy=%.3fJ\n",
			float64(last.SimTimeNs)/1e6, last.EnergyJ); err != nil {
			return err
		}
	}

	rows := []struct {
		name string
		log  bool // log10 scale (for the heavy-tailed series)
		get  func(*Record) float64
	}{
		{"X2 (parallelism)", true, func(r *Record) float64 { return float64(r.X2) }},
		{"delta", true, func(r *Record) float64 { return r.DeltaIn }},
		{"d-hat", false, func(r *Record) float64 { return r.D }},
		{"alpha-hat", true, func(r *Record) float64 { return r.Alpha }},
	}
	for _, row := range rows {
		series := make([]float64, n)
		for i := range l.Records {
			series[i] = row.get(&l.Records[i])
		}
		line, lo, hi := sparkline(series, row.log)
		if _, err := fmt.Fprintf(w, "%-17s |%s| [%.3g .. %.3g]\n", row.name, line, lo, hi); err != nil {
			return err
		}
	}

	findings := Detect(l, DetectOptions{})
	if len(findings) == 0 {
		_, err := fmt.Fprintln(w, "findings: none")
		return err
	}
	if _, err := fmt.Fprintf(w, "findings: %d\n", len(findings)); err != nil {
		return err
	}
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "  - [%s] %s\n", f.Kind, f.Detail); err != nil {
			return err
		}
	}
	return nil
}

// sparkline buckets the series into dashCols columns and maps each bucket
// mean onto the glyph ramp, returning the rendered line and the displayed
// range. Log scaling applies log10(1+x) so zero stays at the bottom.
func sparkline(series []float64, logScale bool) (string, float64, float64) {
	cols := dashCols
	if len(series) < cols {
		cols = len(series)
	}
	buckets := make([]float64, cols)
	for c := 0; c < cols; c++ {
		lo := c * len(series) / cols
		hi := (c + 1) * len(series) / cols
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range series[lo:hi] {
			sum += v
		}
		buckets[c] = sum / float64(hi-lo)
	}
	rawMin, rawMax := buckets[0], buckets[0]
	for _, v := range buckets {
		rawMin = math.Min(rawMin, v)
		rawMax = math.Max(rawMax, v)
	}
	scale := func(v float64) float64 {
		if logScale {
			return math.Log10(1 + math.Max(v, 0))
		}
		return v
	}
	lo, hi := scale(rawMin), scale(rawMax)
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if hi > lo {
			idx = int((scale(v) - lo) / (hi - lo) * float64(len(dashLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(dashLevels) {
			idx = len(dashLevels) - 1
		}
		b.WriteByte(dashLevels[idx])
	}
	return b.String(), rawMin, rawMax
}

// convergenceIter applies the same rule as metrics.Profile.ConvergenceIter
// to the recorded model estimates: the first iteration where both d̂ and α̂
// moved less than metrics.ModelConvergenceRelTol relative to the previous
// iteration, or -1.
func convergenceIter(l *Log) int64 {
	const relTol = metrics.ModelConvergenceRelTol
	var prevD, prevA float64
	have := false
	for i := range l.Records {
		rec := &l.Records[i]
		if rec.D <= 0 || rec.Alpha <= 0 {
			continue
		}
		if have &&
			math.Abs(rec.D-prevD) <= relTol*prevD &&
			math.Abs(rec.Alpha-prevA) <= relTol*prevA {
			return rec.K
		}
		prevD, prevA, have = rec.D, rec.Alpha, true
	}
	return -1
}
