// Package flight is the controller flight recorder: a preallocated ring of
// fixed-size per-iteration records capturing everything the self-tuning
// controller saw and decided — δₖ, Δδₖ, the d and α estimates with their
// vSGD learning-rate internals (ḡ, v̄, h̄, τ, μ), the stage cardinalities
// X¹–X⁴, the set-point P, the far-queue partition boundaries, the advance
// scheduling path, and the charged simulated time/energy.
//
// The log answers "why did the controller pick this δ?" for any past run
// without re-running it, and it carries enough input state that the
// controller's trajectory can be re-executed bit-identically from the log
// alone (see core.ReplayFlight). On top of the log format the package
// provides run-diff (DiffLogs: align two logs and report first divergence
// and per-field deltas) and divergence detection (Detect: δ sign-flip
// oscillation, α collapse, set-point escape as structured findings).
//
// The recorder obeys the same two invariants as internal/obs: it is
// host-side only (never touches the simulated machine), and appending a
// record in the solver's steady state performs zero allocations — a Record
// is a flat struct with no pointers, filled on the caller's stack and
// copied into the preallocated ring (gated by TestFlightSteadyStateAllocs).
package flight

import (
	"sync"
	"sync/atomic"
)

// SchemaVersion is the flight-log record schema version. It is embedded in
// every serialized log header; readers reject logs with a newer version.
// Bump it whenever a Record or Header field is added, removed, or changes
// meaning, and document the change in DESIGN.md §9.
//
// v2 added Header.FarQueue and Header.FarWidth (the near-far far-queue
// strategy selection); v1 logs omit both and replay treats them as the
// flat baseline queue, so old committed logs stay readable.
const SchemaVersion = 2

// Schema is the format identifier on the header line of a serialized log.
const Schema = "energysssp-flight"

// MaxBounds is how many finite far-queue partition boundaries (Eq. 7's Bᵢ)
// each record retains. The partitioned queue may hold up to 64 partitions;
// the first MaxBounds finite boundaries are the ones the controller's
// decision actually interacts with (the runway ahead of the threshold).
const MaxBounds = 8

// DefaultCapacity is the ring capacity used when NewRecorder is given a
// non-positive capacity: 16Ki records ≈ 6 MiB, enough to hold every
// iteration of the paper-scale runs. When a run exceeds the capacity the
// oldest records are overwritten (Dropped counts them) — replay needs the
// full history from iteration 0, so size the ring to the run when replay
// matters.
const DefaultCapacity = 1 << 14

// ModelState checkpoints one vSGD estimator (Algorithm 1) after the
// iteration's Observe: the parameter and the adaptive-learning-rate
// internals. Replay reproduces every field bit-for-bit.
type ModelState struct {
	Theta float64 `json:"theta"` // raw parameter estimate (unclamped)
	GBar  float64 `json:"gbar"`  // EMA of the first derivative
	VBar  float64 `json:"vbar"`  // EMA of the squared first derivative
	HBar  float64 `json:"hbar"`  // EMA of the curvature
	Tau   float64 `json:"tau"`   // EMA time constant
	Mu    float64 `json:"mu"`    // learning rate used by the last step
	Steps int64   `json:"steps"` // observations consumed
}

// Record is one iteration of controller decision state. Every field is
// fixed-size (no pointers, no slices) so the ring is a flat preallocated
// []Record and Append never allocates.
//
// Within one iteration the solver's order of operations is:
// Observe(X1, X2) → NextDelta(queue state) = RawDelta → rebalance/phase
// jump yielding DeltaOut → SetApplied(AppliedDelta, X4). The record
// captures the inputs of each step and the model state after all of them,
// which is exactly what deterministic replay needs.
type Record struct {
	K int64 `json:"k"` // iteration index, 0-based

	// Stage cardinalities of Section 3.1.
	X1 int64 `json:"x1"` // frontier entering advance
	X2 int64 `json:"x2"` // successful distance updates (available parallelism)
	X3 int64 `json:"x3"` // filter output (deduplicated)
	X4 int64 `json:"x4"` // near frontier after bisect-frontier

	// Far-queue state at the delta decision (the QueueState inputs).
	FarLen    int64 `json:"farLen"`    // far-queue size at the decision
	PartBound int64 `json:"partBound"` // first non-empty partition's upper bound (0: none)
	PartSize  int64 `json:"partSize"`  // its size

	// Far-queue state after the iteration's rebalance.
	FarSize  int64            `json:"farSize"`
	NumParts int64            `json:"numParts"`
	Bounds   [MaxBounds]int64 `json:"bounds"` // finite partition bounds, ascending; zero-padded

	// Threshold trajectory.
	SetPoint     float64 `json:"p"`            // P in effect at the decision (power-cap runs retune it)
	DeltaIn      float64 `json:"deltaIn"`      // δₖ entering the decision
	RawDelta     float64 `json:"rawDelta"`     // policy's NextDelta output, before solver clamps/jump
	DeltaOut     float64 `json:"deltaOut"`     // δ in effect after rebalance and phase jump
	AppliedDelta float64 `json:"appliedDelta"` // Δδₖ handed to SetApplied (what BISECT learns from)
	JumpMin      int64   `json:"jumpMin"`      // far MinDist at the phase jump (-1: no jump; Inf: stale-only drain)

	// Model estimates as the Eq. 6 update used them (clamped getters) plus
	// the full vSGD internals. Zero for policies without models (near-far).
	D       float64    `json:"d"`
	Alpha   float64    `json:"alpha"`
	Advance ModelState `json:"advance"`
	Bisect  ModelState `json:"bisect"`

	// Host-side advance scheduling choice (vertex- vs edge-balanced).
	EdgeBalanced bool `json:"edgeBalanced"`

	// Cumulative simulated cost at end of iteration (zero without a machine).
	SimTimeNs int64   `json:"simNs"`
	EnergyJ   float64 `json:"energyJ"`
}

// Header identifies a flight log and carries the controller seeds replay
// needs to reconstruct the exact initial state.
type Header struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`

	// Algorithm names the recorded solver: "selftuning" (replayable
	// controller trajectory, including power-capped runs), "nearfar"
	// (replayable fixed-delta phase schedule), or "policy" (a custom
	// Policy whose decision function is not reconstructible from the log).
	Algorithm string `json:"algorithm"`

	Vertices int64 `json:"vertices"`
	Edges    int64 `json:"edges"`
	Source   int64 `json:"source"`

	// Controller construction state (selftuning): NewController(SetPoint,
	// InitialD, InitialAlpha) with BootstrapIters reproduces the recorded
	// run's initial model state exactly.
	SetPoint       float64 `json:"p,omitempty"`
	InitialDelta   float64 `json:"initialDelta,omitempty"`
	InitialD       float64 `json:"initialD,omitempty"`
	InitialAlpha   float64 `json:"initialAlpha,omitempty"`
	BootstrapIters int     `json:"bootstrapIters,omitempty"`

	// FixedDelta is the near-far baseline's threshold (nearfar only).
	FixedDelta int64 `json:"fixedDelta,omitempty"`

	// FarQueue and FarWidth record the far-queue strategy the solver ran
	// ("flat", "lazy", or "rho" — never "auto") and its bucket width
	// (nearfar only; zero width for flat). Replay dispatches on FarQueue:
	// flat and lazy share the exact fixed-delta threshold recompute, rho
	// validates its batch schedule against the width instead. Absent in
	// v1 logs, which predate the strategies and are replayed as flat.
	FarQueue string `json:"farQueue,omitempty"`
	FarWidth int64  `json:"farWidth,omitempty"`

	// Label is free-form run identification set by the recording driver
	// (dataset, scale, seed, device...). Ignored by replay and diff.
	Label string `json:"label,omitempty"`
}

// Log is an in-memory flight log: one header plus the retained records in
// iteration order.
type Log struct {
	Header  Header
	Records []Record
}

// Recorder captures one Record per solver iteration into a preallocated
// ring. All methods are safe for concurrent use (the obs server streams the
// log while the solver appends); a nil *Recorder is a no-op, so solver code
// records unconditionally and the off path is the on path.
type Recorder struct {
	mu      sync.Mutex
	hdr     Header
	haveHdr bool
	ring    []Record
	seq     uint64
	online  atomic.Pointer[OnlineDetector]
}

// NewRecorder returns a recorder whose ring holds capacity records
// (DefaultCapacity if capacity <= 0). All memory is allocated here.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]Record, capacity)}
}

// SetHeader records the run identification; the solver calls it once at
// solve start. It also resets the ring so one recorder can serve
// consecutive solves (the last solve's log is the one retained).
func (r *Recorder) SetHeader(h Header) {
	if r == nil {
		return
	}
	h.Schema = Schema
	h.Version = SchemaVersion
	r.mu.Lock()
	r.hdr = h
	r.haveHdr = true
	r.seq = 0
	r.mu.Unlock()
	r.online.Load().Reset(h)
}

// SetOnline attaches (or, with nil, detaches) an online detector that
// observes every appended record. The recorder rearms it on SetHeader.
func (r *Recorder) SetOnline(d *OnlineDetector) {
	if r == nil {
		return
	}
	r.online.Store(d)
}

// Header returns the current header (zero until SetHeader).
func (r *Recorder) Header() Header {
	if r == nil {
		return Header{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hdr
}

// Append copies one record into the ring, overwriting the oldest when full.
// This is the recorder's hot path: one mutex acquire and one struct copy
// into preallocated storage, no allocation, no formatting.
//
//hot:alloc-free
func (r *Recorder) Append(rec *Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.seq%uint64(len(r.ring))] = *rec
	r.seq++
	r.mu.Unlock()
	// Outside r.mu: the detector has its own lock and may call back into
	// an emit func that must not nest under the recorder's.
	r.online.Load().Observe(rec)
}

// Len reports how many records are currently retained (<= Cap).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.ring)) {
		return int(r.seq)
	}
	return len(r.ring)
}

// Cap reports the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Dropped reports how many records have been overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq <= uint64(len(r.ring)) {
		return 0
	}
	return r.seq - uint64(len(r.ring))
}

// Snapshot appends the retained records, oldest first, to dst (which may be
// nil) and returns the result. It allocates only when dst lacks capacity.
func (r *Recorder) Snapshot(dst []Record) []Record {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.ring))
	if r.seq <= n {
		return append(dst, r.ring[:r.seq]...)
	}
	head := r.seq % n
	dst = append(dst, r.ring[head:]...)
	return append(dst, r.ring[:head]...)
}

// Log snapshots the recorder into an immutable Log.
func (r *Recorder) Log() *Log {
	if r == nil {
		return &Log{}
	}
	return &Log{Header: r.Header(), Records: r.Snapshot(nil)}
}

// Contiguous reports whether the log's records form the complete history
// from iteration 0 with no gaps — the precondition for replay (a wrapped
// ring loses the early iterations the model state depends on).
func (l *Log) Contiguous() bool {
	for i, rec := range l.Records {
		if rec.K != int64(i) {
			return false
		}
	}
	return true
}
