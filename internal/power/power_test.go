package power

import (
	"math"
	"testing"
	"time"

	"energysssp/internal/sim"
)

func seg(startMs, endMs int, w float64) sim.PowerSeg {
	return sim.PowerSeg{
		Start: time.Duration(startMs) * time.Millisecond,
		End:   time.Duration(endMs) * time.Millisecond,
		Watts: w,
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.AvgWatts != 0 || s.EnergyJ != 0 || s.Duration != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeConstant(t *testing.T) {
	s := Summarize([]sim.PowerSeg{seg(0, 1000, 5)})
	if s.AvgWatts != 5 || s.MedianWatts != 5 || s.PeakWatts != 5 || s.MinWatts != 5 {
		t.Fatalf("constant summary: %+v", s)
	}
	if math.Abs(s.EnergyJ-5.0) > 1e-9 {
		t.Fatalf("energy %.9f, want 5", s.EnergyJ)
	}
}

func TestSummarizeMixed(t *testing.T) {
	// 900 ms at 4 W, 100 ms at 10 W.
	s := Summarize([]sim.PowerSeg{seg(0, 900, 4), seg(900, 1000, 10)})
	wantAvg := (0.9*4 + 0.1*10) / 1.0
	if math.Abs(s.AvgWatts-wantAvg) > 1e-9 {
		t.Fatalf("avg %.4f, want %.4f", s.AvgWatts, wantAvg)
	}
	if s.MedianWatts != 4 {
		t.Fatalf("median %.2f, want 4 (time-weighted)", s.MedianWatts)
	}
	if s.P95Watts != 10 {
		t.Fatalf("p95 %.2f, want 10", s.P95Watts)
	}
	if s.PeakWatts != 10 || s.MinWatts != 4 {
		t.Fatalf("peak/min: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummarizeSkipsEmptySegments(t *testing.T) {
	s := Summarize([]sim.PowerSeg{seg(5, 5, 99), seg(0, 100, 3)})
	if s.PeakWatts != 3 {
		t.Fatalf("zero-length segment contributed: %+v", s)
	}
}

func TestResample(t *testing.T) {
	trace := []sim.PowerSeg{seg(0, 10, 2), seg(10, 20, 8)}
	samples := Resample(trace, 1000) // 1 per ms
	if len(samples) != 21 {
		t.Fatalf("got %d samples, want 21", len(samples))
	}
	if samples[0].Watts != 2 || samples[5].Watts != 2 {
		t.Fatalf("early samples wrong: %+v", samples[:6])
	}
	if samples[15].Watts != 8 {
		t.Fatalf("late sample wrong: %+v", samples[15])
	}
	// Default rate fallback.
	if got := Resample(trace, 0); len(got) != 21 {
		t.Fatalf("default rate gave %d samples", len(got))
	}
	if Resample(nil, 1000) != nil {
		t.Fatal("nil trace should resample to nil")
	}
}

func TestResampleGapReadsZero(t *testing.T) {
	// A synthetic trace with a hole: samples inside the hole read 0 W,
	// like a PowerMon channel with the supply disconnected.
	trace := []sim.PowerSeg{seg(0, 5, 4), seg(10, 15, 6)}
	samples := Resample(trace, 1000)
	if samples[2].Watts != 4 || samples[12].Watts != 6 {
		t.Fatalf("segment samples wrong: %+v %+v", samples[2], samples[12])
	}
	if samples[7].Watts != 0 {
		t.Fatalf("gap sample = %v, want 0", samples[7].Watts)
	}
}

func TestResampleAgreesWithSummary(t *testing.T) {
	// Average of dense samples should approximate the exact average.
	m := sim.NewMachine(sim.TK1())
	m.EnableTrace()
	for i := 0; i < 50; i++ {
		m.Kernel(sim.KernelAdvance, 200000)
		m.Kernel(sim.KernelFilter, 50000)
	}
	sum := Summarize(m.Trace())
	samples := Resample(m.Trace(), 100000)
	var avg float64
	for _, s := range samples {
		avg += s.Watts
	}
	avg /= float64(len(samples))
	if math.Abs(avg-sum.AvgWatts)/sum.AvgWatts > 0.05 {
		t.Fatalf("resampled avg %.3f vs exact %.3f", avg, sum.AvgWatts)
	}
}
