// Package power provides the PowerMon-style measurement layer on top of the
// simulated machine: fixed-rate resampling of the power trace (the real
// PowerMon samples DC current at up to 1 kHz per channel) and summary
// statistics used by the paper's power/performance figures.
package power

import (
	"fmt"
	"math"
	"sort"
	"time"

	"energysssp/internal/sim"
)

// DefaultRateHz matches the PowerMon device's maximum per-channel rate.
const DefaultRateHz = 1000

// Sample is one timestamped power reading.
type Sample struct {
	T     time.Duration
	Watts float64
}

// Resample converts a piecewise-constant power trace into fixed-rate
// samples, exactly what a PowerMon attached to the board's supply rail
// would report. Gaps between segments (there are none in machine-produced
// traces) would read as 0.
func Resample(trace []sim.PowerSeg, rateHz int) []Sample {
	if rateHz <= 0 {
		rateHz = DefaultRateHz
	}
	if len(trace) == 0 {
		return nil
	}
	period := time.Duration(float64(time.Second) / float64(rateHz))
	end := trace[len(trace)-1].End
	n := int(end/period) + 1
	out := make([]Sample, 0, n)
	seg := 0
	for t := time.Duration(0); t <= end; t += period {
		for seg < len(trace)-1 && t >= trace[seg].End {
			seg++
		}
		w := 0.0
		if t >= trace[seg].Start && t < trace[seg].End {
			w = trace[seg].Watts
		} else if t == trace[seg].End && seg == len(trace)-1 {
			w = trace[seg].Watts
		}
		out = append(out, Sample{T: t, Watts: w})
	}
	return out
}

// Summary captures the distributional power statistics reported in the
// paper's figures.
type Summary struct {
	AvgWatts    float64
	MedianWatts float64
	P95Watts    float64
	PeakWatts   float64
	MinWatts    float64
	EnergyJ     float64
	Duration    time.Duration
}

// Summarize computes a Summary directly from the piecewise-constant trace
// (time-weighted, so it is exact rather than sample-rate dependent).
func Summarize(trace []sim.PowerSeg) Summary {
	var s Summary
	if len(trace) == 0 {
		return s
	}
	s.MinWatts = math.Inf(1)
	var segs []wd
	var total time.Duration
	for _, seg := range trace {
		d := seg.End - seg.Start
		if d <= 0 {
			continue
		}
		segs = append(segs, wd{seg.Watts, d})
		total += d
		s.EnergyJ += seg.Watts * d.Seconds()
		if seg.Watts > s.PeakWatts {
			s.PeakWatts = seg.Watts
		}
		if seg.Watts < s.MinWatts {
			s.MinWatts = seg.Watts
		}
	}
	if total <= 0 {
		s.MinWatts = 0
		return s
	}
	s.Duration = total
	s.AvgWatts = s.EnergyJ / total.Seconds()
	sort.Slice(segs, func(i, j int) bool { return segs[i].w < segs[j].w })
	s.MedianWatts = weightedQuantile(segs, total, 0.5)
	s.P95Watts = weightedQuantile(segs, total, 0.95)
	return s
}

// wd is a (watts, duration) pair used for time-weighted quantiles.
type wd struct {
	w float64
	d time.Duration
}

func weightedQuantile(sorted []wd, total time.Duration, q float64) float64 {
	target := time.Duration(float64(total) * q)
	var acc time.Duration
	for _, s := range sorted {
		acc += s.d
		if acc >= target {
			return s.w
		}
	}
	return sorted[len(sorted)-1].w
}

// String renders the summary as a single log-friendly line.
func (s Summary) String() string {
	return fmt.Sprintf("avg=%.2fW median=%.2fW p95=%.2fW peak=%.2fW energy=%.3fJ over %v",
		s.AvgWatts, s.MedianWatts, s.P95Watts, s.PeakWatts, s.EnergyJ, s.Duration)
}
