// Package parallel provides a small, allocation-conscious toolkit for
// data-parallel loops: a reusable worker pool, static and dynamic
// (work-stealing-style) parallel-for primitives, and atomic helpers used by
// the SSSP relaxation kernels.
//
// The package deliberately mirrors the execution structure of a GPU kernel
// launch: a loop over n independent items is split into chunks that are
// executed by a fixed set of workers. The simulated device model in
// internal/sim charges time and energy for these "kernels" independently of
// wall-clock behaviour, while this package makes the work actually execute
// concurrently on the host CPU.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"energysssp/internal/obs"
)

// DefaultGrain is the default number of items in a dynamically scheduled
// chunk. Small enough to balance irregular per-item work (variable vertex
// degrees), large enough to amortize the atomic fetch-add per chunk.
const DefaultGrain = 512

// MaxWorkers returns the degree of parallelism used by Run and For when the
// pool is constructed with size 0: the number of usable CPUs.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool is a reusable set of worker goroutines. The zero value is not usable;
// construct with NewPool. A Pool with size 1 degenerates to sequential
// execution in the calling goroutine, which keeps single-threaded runs
// deterministic and cheap.
//
// Pool is safe for sequential reuse; a single Run/For/Dynamic call must
// finish before the next begins. (SSSP iterations are themselves sequential,
// so this matches the usage pattern.)
type Pool struct {
	size  int
	jobs  []chan func(worker int)
	wg    sync.WaitGroup
	once  sync.Once
	stats atomic.Pointer[obs.PoolStats] // nil: no observation (the default)
}

// NewPool creates a pool with the given number of workers. size <= 0 selects
// MaxWorkers().
func NewPool(size int) *Pool {
	if size <= 0 {
		size = MaxWorkers()
	}
	return &Pool{size: size}
}

// Size reports the number of workers in the pool.
func (p *Pool) Size() int { return p.size }

func (p *Pool) start() {
	p.jobs = make([]chan func(worker int), p.size)
	for w := 0; w < p.size; w++ {
		ch := make(chan func(worker int))
		p.jobs[w] = ch
		go func(w int, ch chan func(worker int)) {
			for f := range ch {
				if st := p.stats.Load(); st != nil {
					t0 := time.Now()
					f(w)
					st.RecordWorker(w, time.Since(t0))
				} else {
					f(w)
				}
				p.wg.Done()
			}
		}(w, ch)
	}
}

// Close shuts down the worker goroutines. The pool must be idle. Close is
// optional: an abandoned pool's goroutines are reclaimed at process exit,
// but tests close pools to keep goroutine counts flat.
func (p *Pool) Close() {
	if p.jobs != nil {
		for _, ch := range p.jobs {
			close(ch)
		}
		p.jobs = nil
	}
}

// Observe attaches (or, with nil, detaches) a launch/busy-time accumulator
// and enables its per-worker busy table for this pool's size. Observation
// times each Run launch (and each worker's share of it) with host clock
// reads; an unobserved pool pays one atomic load per launch. The stats
// pointer is atomic so concurrent solves observing one shared pool stay
// race-free. Host-side only — simulated time and energy are charged by
// internal/sim regardless of whether the pool is observed.
func (p *Pool) Observe(s *obs.PoolStats) {
	s.EnableWorkers(p.size)
	p.stats.Store(s)
}

// Run invokes f once per worker, concurrently, and waits for all invocations
// to finish. f receives the worker index in [0, Size()).
func (p *Pool) Run(f func(worker int)) {
	st := p.stats.Load()
	if st == nil {
		p.run(f)
		return
	}
	start := time.Now()
	if p.size == 1 {
		// Sequential pools run in the caller; the launch is worker 0's
		// busy time.
		f(0)
		st.RecordWorker(0, time.Since(start))
	} else {
		p.run(f)
	}
	st.Record(time.Since(start))
}

func (p *Pool) run(f func(worker int)) {
	if p.size == 1 {
		f(0)
		return
	}
	p.once.Do(p.start)
	p.wg.Add(p.size)
	for w := 0; w < p.size; w++ {
		p.jobs[w] <- f
	}
	p.wg.Wait()
}

// For executes body over the half-open range [0, n) using a static block
// partition: worker w receives one contiguous block. Use for loops whose
// per-item cost is roughly uniform.
func (p *Pool) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.size == 1 || n < 2*p.size {
		body(0, n)
		return
	}
	chunk := (n + p.size - 1) / p.size
	p.Run(func(w int) {
		lo := w * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}

// Dynamic executes body over [0, n) using dynamic chunk scheduling: workers
// repeatedly claim the next chunk of grain items with an atomic counter.
// Use for irregular loops (e.g. frontier expansion where vertex degree
// varies by orders of magnitude). grain <= 0 selects DefaultGrain.
func (p *Pool) Dynamic(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if p.size == 1 || n <= grain {
		body(0, n)
		return
	}
	var next atomic.Int64
	p.Run(func(int) {
		for {
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	})
}

// DynamicWorker is Dynamic with the executing worker's index passed to the
// body, so callers can accumulate into per-worker buffers without locking
// (the frontier-expansion kernels use this to collect output vertices).
func (p *Pool) DynamicWorker(n, grain int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if p.size == 1 || n <= grain {
		body(0, 0, n)
		return
	}
	var next atomic.Int64
	p.Run(func(w int) {
		for {
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(w, lo, hi)
		}
	})
}

// SumInt64 computes a parallel sum-reduction of f over [0, n) without
// false-sharing on the partials.
func (p *Pool) SumInt64(n int, f func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	type padded struct {
		v int64
		_ [7]int64
	}
	partial := make([]padded, p.size)
	p.For(n, func(lo, hi int) {
		w := workerOf(lo, n, p.size)
		var s int64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[w].v += s
	})
	var total int64
	for i := range partial {
		total += partial[i].v
	}
	return total
}

// workerOf maps a static-partition chunk start back to its worker index.
func workerOf(lo, n, size int) int {
	if n < 2*size {
		return 0
	}
	chunk := (n + size - 1) / size
	return lo / chunk
}

// MinInt64 atomically lowers *addr to v if v is smaller. It reports whether
// the stored value was lowered. This is the CPU analogue of the CUDA
// atomicMin used by the Gunrock filter/advance stages.
func MinInt64(addr *int64, v int64) bool {
	for {
		old := atomic.LoadInt64(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, v) {
			return true
		}
	}
}

// LoadInt64 performs an atomic load of *addr. Exposed so callers relaxing
// edges can read distances racily-but-safely during a parallel kernel.
func LoadInt64(addr *int64) int64 { return atomic.LoadInt64(addr) }

// StoreInt64 performs an atomic store.
func StoreInt64(addr *int64, v int64) { atomic.StoreInt64(addr, v) }
