package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolHammer drives many pools through repeated For/Dynamic/
// DynamicWorker/SumInt64 rounds concurrently, with every kernel body
// funneling into shared atomic counters. Its purpose is to give the race
// detector surface area over the pool's job channels, WaitGroup handoffs,
// and the dynamic chunk counter; run it via `go test -race` (scripts/
// check.sh does). Skipped under -short.
func TestPoolHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped under -short")
	}
	const (
		goroutines = 4
		rounds     = 60
		n          = 10_000
	)
	var total atomic.Int64
	var rowSum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewPool(3 + g%3)
			defer p.Close()
			for r := 0; r < rounds; r++ {
				switch r % 4 {
				case 0:
					p.For(n, func(lo, hi int) {
						total.Add(int64(hi - lo))
					})
				case 1:
					p.Dynamic(n, 64, func(lo, hi int) {
						total.Add(int64(hi - lo))
					})
				case 2:
					p.DynamicWorker(n, 128, func(w, lo, hi int) {
						total.Add(int64(hi - lo))
					})
				case 3:
					rowSum.Add(p.SumInt64(n, func(i int) int64 { return 1 }))
				}
			}
		}(g)
	}
	wg.Wait()

	perRound := int64(n)
	wantTotal := int64(goroutines) * int64(rounds) * perRound * 3 / 4
	if got := total.Load(); got != wantTotal {
		t.Fatalf("items processed = %d, want %d (lost or duplicated chunks)", got, wantTotal)
	}
	wantSum := int64(goroutines) * int64(rounds) / 4 * perRound
	if got := rowSum.Load(); got != wantSum {
		t.Fatalf("SumInt64 total = %d, want %d", got, wantSum)
	}
}

// TestMinInt64Hammer races many goroutines lowering a shared set of slots
// through the CAS loop MinInt64 uses for relaxation, then checks every slot
// holds the global minimum each goroutine computed locally.
func TestMinInt64Hammer(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped under -short")
	}
	const (
		goroutines = 8
		slots      = 64
		writes     = 20_000
	)
	shared := make([]int64, slots)
	for i := range shared {
		shared[i] = 1 << 60
	}
	mins := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := make([]int64, slots)
			for i := range local {
				local[i] = 1 << 60
			}
			// Deterministic per-goroutine pseudo-random stream.
			x := uint64(g)*2654435761 + 12345
			for w := 0; w < writes; w++ {
				x = x*6364136223846793005 + 1442695040888963407
				slot := int(x>>33) % slots
				v := int64(x % 1_000_000)
				MinInt64(&shared[slot], v)
				if v < local[slot] {
					local[slot] = v
				}
			}
			mins[g] = local
		}(g)
	}
	wg.Wait()
	for s := 0; s < slots; s++ {
		want := int64(1) << 60
		for g := 0; g < goroutines; g++ {
			if mins[g][s] < want {
				want = mins[g][s]
			}
		}
		if got := atomic.LoadInt64(&shared[s]); got != want {
			t.Fatalf("slot %d = %d, want %d", s, got, want)
		}
	}
}

// TestScanStress hammers the prefix-sum scan under the race detector: many
// goroutines each drive their own Pool+Scan through repeated ExclusiveSum
// rounds (the scan publishes per-call state to workers through the pool's
// channel handoff — exactly the pattern this test gives -race surface area
// over), and every round's total and a sampled set of prefix entries are
// checked against the closed form. Run via `go test -race` (scripts/
// check.sh does). Skipped under -short.
func TestScanStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped under -short")
	}
	const (
		goroutines = 4
		rounds     = 40
		n          = 30_000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewPool(2 + g%3)
			defer p.Close()
			s := NewScan(p)
			dst := make([]int64, n+1)
			f := func(i int) int64 { return int64(i%7) + 1 }
			for r := 0; r < rounds; r++ {
				total, max := s.ExclusiveSum(n, dst, f)
				var want int64
				for i := 0; i < n; i++ {
					want += int64(i%7) + 1
				}
				if total != want || max != 7 {
					t.Errorf("round %d: total=%d max=%d, want %d 7", r, total, max, want)
					return
				}
				for _, probe := range []int64{0, total / 3, total - 1} {
					i := SearchPrefix(dst[:n+1], probe)
					if dst[i] > probe || dst[i+1] <= probe {
						t.Errorf("round %d: SearchPrefix(%d)=%d bad bracket", r, probe, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
