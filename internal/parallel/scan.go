package parallel

import "energysssp/internal/obs"

// Prefix-sum and edge-partition primitives for load-balanced kernels.
//
// The edge-balanced advance path in internal/sssp partitions *edges* rather
// than vertices: an exclusive prefix sum over the frontier's out-degrees
// turns "which worker owns edge e" into a binary search (merge-path style),
// so a single million-edge hub is split across workers instead of
// serializing one dynamic chunk. The primitives here are the reusable
// pieces: a Scan value that computes the prefix sum in parallel without
// allocating in steady state, SearchPrefix for the owner lookup, and
// EdgeShare for the equal-edges partition bounds.

// scanPart holds one worker's block reduction, padded to a cache line so
// concurrent writers do not false-share.
type scanPart struct {
	sum int64
	max int64
	off int64
	_   [5]int64
}

// scanSeqMax is the largest input a Scan handles sequentially: below this
// the two extra parallel passes cost more than they save.
const scanSeqMax = 2048

// Scan computes exclusive prefix sums on a fixed Pool without per-call
// allocation: the per-worker partials and the two pass closures are built
// once at construction and reused by every ExclusiveSum call. A Scan is
// bound to its pool and, like the pool itself, supports sequential reuse
// only (one ExclusiveSum at a time).
type Scan struct {
	p     *Pool
	parts []scanPart

	// Per-call state, published to the workers by ExclusiveSum before the
	// pass launches and cleared afterwards. Pool.Run's channel handoff
	// orders these writes before the worker reads.
	n   int
	dst []int64
	f   func(i int) int64

	pass1 func(w int)
	pass2 func(w int)
}

// NewScan builds a Scan for the pool.
func NewScan(p *Pool) *Scan {
	s := &Scan{p: p, parts: make([]scanPart, p.Size())}
	s.pass1 = func(w int) {
		obs.ApplyPhaseLabel(obs.PhaseScan) // worker CPU samples -> scan
		lo, hi := blockRange(s.n, s.p.Size(), w)
		var sum, maxv int64
		for i := lo; i < hi; i++ {
			v := s.f(i)
			s.dst[i] = sum
			sum += v
			if v > maxv {
				maxv = v
			}
		}
		s.parts[w].sum = sum
		s.parts[w].max = maxv
	}
	s.pass2 = func(w int) {
		obs.ApplyPhaseLabel(obs.PhaseScan) // worker CPU samples -> scan
		off := s.parts[w].off
		if off == 0 {
			return
		}
		lo, hi := blockRange(s.n, s.p.Size(), w)
		for i := lo; i < hi; i++ {
			s.dst[i] += off
		}
	}
	return s
}

// ExclusiveSum fills dst[0:n] with the exclusive prefix sum of f over
// [0, n) — dst[i] = f(0)+...+f(i-1) — and dst[n] with the total. It returns
// the total and the maximum single value of f. dst must have length at
// least n+1. f must be safe for concurrent calls with distinct arguments
// (the kernels pass pure degree lookups).
func (s *Scan) ExclusiveSum(n int, dst []int64, f func(i int) int64) (total, max int64) {
	if n < 0 {
		panic("parallel: ExclusiveSum with negative n")
	}
	if len(dst) < n+1 {
		panic("parallel: ExclusiveSum dst shorter than n+1")
	}
	if s.p.Size() == 1 || n <= scanSeqMax {
		var sum, maxv int64
		for i := 0; i < n; i++ {
			v := f(i)
			dst[i] = sum
			sum += v
			if v > maxv {
				maxv = v
			}
		}
		dst[n] = sum
		return sum, maxv
	}
	s.n, s.dst, s.f = n, dst, f
	s.p.Run(s.pass1)
	var off, maxv int64
	for w := range s.parts {
		s.parts[w].off = off
		off += s.parts[w].sum
		if s.parts[w].max > maxv {
			maxv = s.parts[w].max
		}
	}
	s.p.Run(s.pass2)
	dst[n] = off
	s.dst, s.f = nil, nil
	return off, maxv
}

// blockRange returns worker w's contiguous share of [0, n) under a balanced
// static split into parts blocks (block sizes differ by at most one).
func blockRange(n, parts, w int) (lo, hi int) {
	lo = n * w / parts
	hi = n * (w + 1) / parts
	return lo, hi
}

// SearchPrefix returns the largest index i such that prefix[i] <= x, for an
// ascending prefix array with prefix[0] <= x. Kernels use it to find the
// frontier vertex that owns global edge x: with an exclusive degree prefix,
// prefix[i] <= x < prefix[i+1] means edge x belongs to vertex i.
func SearchPrefix(prefix []int64, x int64) int {
	lo, hi := 0, len(prefix)-1 // invariant: prefix[lo] <= x, prefix[hi+1] > x or hi+1 == len
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if prefix[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// EdgeShare returns the half-open range [lo, hi) of the edges assigned to
// worker w when total edges are split into parts equal shares (sizes differ
// by at most one).
func EdgeShare(total int64, parts, w int) (lo, hi int64) {
	lo = total * int64(w) / int64(parts)
	hi = total * int64(w+1) / int64(parts)
	return lo, hi
}
