package parallel

import (
	"math/rand/v2"
	"testing"
)

// refExclusiveSum is the sequential reference the parallel scan must match.
func refExclusiveSum(vals []int64) (prefix []int64, total, max int64) {
	prefix = make([]int64, len(vals)+1)
	for i, v := range vals {
		prefix[i+1] = prefix[i] + v
		if v > max {
			max = v
		}
	}
	return prefix, prefix[len(vals)], max
}

func TestExclusiveSumMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, workers := range []int{1, 2, 3, 4, 8} {
		p := NewPool(workers)
		s := NewScan(p)
		for _, n := range []int{0, 1, 2, 5, scanSeqMax - 1, scanSeqMax, scanSeqMax + 1, 10_000} {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = rng.Int64N(1000)
			}
			want, wantTotal, wantMax := refExclusiveSum(vals)
			dst := make([]int64, n+1)
			total, max := s.ExclusiveSum(n, dst, func(i int) int64 { return vals[i] })
			if total != wantTotal || max != wantMax {
				t.Fatalf("workers=%d n=%d: total=%d max=%d, want %d %d", workers, n, total, max, wantTotal, wantMax)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("workers=%d n=%d: prefix[%d]=%d, want %d", workers, n, i, dst[i], want[i])
				}
			}
		}
		p.Close()
	}
}

func TestExclusiveSumZeroRuns(t *testing.T) {
	// Runs of zero-degree items must keep the prefix non-decreasing and
	// SearchPrefix must still land on an item that owns the probed edge.
	vals := []int64{0, 0, 5, 0, 0, 0, 3, 0, 7, 0}
	prefix := make([]int64, len(vals)+1)
	p := NewPool(1)
	defer p.Close()
	s := NewScan(p)
	total, _ := s.ExclusiveSum(len(vals), prefix, func(i int) int64 { return vals[i] })
	if total != 15 {
		t.Fatalf("total = %d, want 15", total)
	}
	for e := int64(0); e < total; e++ {
		i := SearchPrefix(prefix[:len(vals)+1], e)
		if prefix[i] > e || prefix[i+1] <= e {
			t.Fatalf("SearchPrefix(%d) = %d: prefix[i]=%d prefix[i+1]=%d", e, i, prefix[i], prefix[i+1])
		}
		if vals[i] == 0 {
			t.Fatalf("SearchPrefix(%d) = %d: landed on zero-degree item", e, i)
		}
	}
}

func TestExclusiveSumReuseNoAllocs(t *testing.T) {
	// The scan must not allocate in steady state: the pass closures and
	// partials are built once, dst is caller-owned.
	const n = 50_000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	deg := func(i int) int64 { return vals[i] }
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		s := NewScan(p)
		dst := make([]int64, n+1)
		s.ExclusiveSum(n, dst, deg) // warm up pool goroutines
		allocs := testing.AllocsPerRun(20, func() {
			s.ExclusiveSum(n, dst, deg)
		})
		p.Close()
		if allocs != 0 {
			t.Errorf("workers=%d: ExclusiveSum allocates %.1f per run, want 0", workers, allocs)
		}
	}
}

func TestSearchPrefix(t *testing.T) {
	prefix := []int64{0, 3, 3, 10, 12}
	cases := []struct {
		x    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 0},
		{3, 2}, // ties resolve to the largest index
		{4, 2}, {9, 2},
		{10, 3}, {11, 3},
		{12, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := SearchPrefix(prefix, c.x); got != c.want {
			t.Errorf("SearchPrefix(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestEdgeShare(t *testing.T) {
	for _, total := range []int64{0, 1, 7, 64, 1001} {
		for _, parts := range []int{1, 2, 3, 8} {
			var covered int64
			prevHi := int64(0)
			for w := 0; w < parts; w++ {
				lo, hi := EdgeShare(total, parts, w)
				if lo != prevHi {
					t.Fatalf("total=%d parts=%d w=%d: lo=%d, want %d (contiguous)", total, parts, w, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("total=%d parts=%d w=%d: hi=%d < lo=%d", total, parts, w, hi, lo)
				}
				if diff := (hi - lo) - total/int64(parts); diff < 0 || diff > 1 {
					t.Fatalf("total=%d parts=%d w=%d: share size %d not balanced", total, parts, w, hi-lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != total {
				t.Fatalf("total=%d parts=%d: covered %d", total, parts, covered)
			}
		}
	}
}

func TestBlockRangeCovers(t *testing.T) {
	for _, n := range []int{0, 1, 5, 17, 1024} {
		for _, parts := range []int{1, 2, 3, 7} {
			prev := 0
			for w := 0; w < parts; w++ {
				lo, hi := blockRange(n, parts, w)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d parts=%d w=%d: [%d,%d) after %d", n, parts, w, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d parts=%d: covered %d", n, parts, prev)
			}
		}
	}
}
