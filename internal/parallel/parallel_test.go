package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolSizes(t *testing.T) {
	if NewPool(0).Size() != MaxWorkers() {
		t.Fatalf("NewPool(0).Size() = %d, want %d", NewPool(0).Size(), MaxWorkers())
	}
	if NewPool(-3).Size() != MaxWorkers() {
		t.Fatal("negative size should select MaxWorkers")
	}
	if NewPool(7).Size() != 7 {
		t.Fatal("explicit size not honored")
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 1001} {
			hits := make([]int32, n)
			p.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestDynamicCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 100, 4097} {
			for _, grain := range []int{-1, 1, 3, 512, 10000} {
				hits := make([]int32, n)
				p.Dynamic(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Fatalf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, h)
					}
				}
			}
		}
		p.Close()
	}
}

func TestRunInvokesEachWorkerOnce(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	var mask atomic.Int64
	p.Run(func(w int) { mask.Add(1 << uint(w)) })
	if mask.Load() != 0b11111 {
		t.Fatalf("worker mask = %b, want 11111", mask.Load())
	}
}

func TestSumInt64(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Sum of 0..n-1 for a few n.
	for _, n := range []int{0, 1, 5, 1024, 99999} {
		got := p.SumInt64(n, func(i int) int64 { return int64(i) })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("SumInt64(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMinInt64Lowers(t *testing.T) {
	v := int64(100)
	if !MinInt64(&v, 50) || v != 50 {
		t.Fatalf("MinInt64 failed to lower: v=%d", v)
	}
	if MinInt64(&v, 50) {
		t.Fatal("MinInt64 reported lowering for equal value")
	}
	if MinInt64(&v, 60) || v != 50 {
		t.Fatalf("MinInt64 raised the value: v=%d", v)
	}
}

func TestMinInt64Concurrent(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	v := int64(1 << 40)
	const n = 100000
	p.Dynamic(n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			MinInt64(&v, int64(n-i))
		}
	})
	if v != 1 {
		t.Fatalf("concurrent MinInt64 result = %d, want 1", v)
	}
}

// Property: For and a sequential loop compute identical sums for arbitrary
// inputs.
func TestForMatchesSequentialProperty(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	f := func(xs []int32) bool {
		var seq int64
		for _, x := range xs {
			seq += int64(x)
		}
		var par atomic.Int64
		p.For(len(xs), func(lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(xs[i])
			}
			par.Add(s)
		})
		return par.Load() == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinInt64 applied in any order yields the minimum.
func TestMinInt64Property(t *testing.T) {
	f := func(xs []int64, start int64) bool {
		if start < 0 {
			start = -start
		}
		v := start
		want := start
		for _, x := range xs {
			if x < want {
				want = x
			}
			MinInt64(&v, x)
		}
		return v == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicWorkerCoversRangeWithWorkerIDs(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 100, 5000} {
			hits := make([]int32, n)
			p.DynamicWorker(n, 64, func(w, lo, hi int) {
				if w < 0 || w >= workers {
					t.Errorf("worker id %d out of range", w)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestCloseIdempotentAndSequentialPool(t *testing.T) {
	p := NewPool(3)
	p.Run(func(int) {})
	p.Close()
	p.Close() // second close must not panic
	// A size-1 pool never spawns goroutines; all paths run inline.
	q := NewPool(1)
	ran := false
	q.Run(func(w int) { ran = w == 0 })
	if !ran {
		t.Fatal("sequential Run did not execute inline")
	}
	q.For(10, func(lo, hi int) {
		if lo != 0 || hi != 10 {
			t.Fatalf("sequential For chunk [%d,%d)", lo, hi)
		}
	})
	q.Close() // no goroutines to close
}

func TestStoreLoadInt64(t *testing.T) {
	var v int64
	StoreInt64(&v, 42)
	if LoadInt64(&v) != 42 {
		t.Fatal("atomic store/load")
	}
}

func BenchmarkDynamicFor(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	data := make([]int64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Dynamic(len(data), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j]++
			}
		})
	}
}
