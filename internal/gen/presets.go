package gen

import (
	"fmt"
	"math"

	"energysssp/internal/graph"
)

// Paper dataset sizes (Table 1). The presets below target these at
// scale=1.0 and shrink proportionally for smaller scales.
const (
	calNodes  = 1_890_815
	calEdges  = 4_630_444
	wikiNodes = 1_634_989
	wikiEdges = 19_735_890
)

// CalLike generates a road-network-like substitute for the DIMACS Cal
// graph: a maze-spanning-tree lattice (Road) with ~1.89M·scale vertices and
// ~4.63M·scale arcs, guaranteed connected, high diameter, degree ≤ 4.
// Weights are uniform integers in [1, 4096], mimicking DIMACS travel times.
// scale must be positive; scale=1.0 matches the paper's input size.
func CalLike(scale float64, seed uint64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(calNodes) * scale)
	if n < 64 {
		n = 64
	}
	side := int(math.Sqrt(float64(n)))
	// Average out-degree target m/n ≈ 2.449 arcs. The spanning tree
	// contributes 2(n-1)/n ≈ 2 arcs per vertex; each extra undirected
	// lattice edge contributes 2 more arcs. Non-tree lattice edges number
	// ≈ 2n − (n−1) ≈ n, so the extra-probability is ≈ (target − 2)/2.
	targetDeg := float64(calEdges) / float64(calNodes)
	extra := (targetDeg - 2) / 2
	// Log-uniform travel times: mostly short city segments with a heavy
	// tail of long highway segments, like the DIMACS inputs. The weight
	// spread is what defeats any single fixed delta.
	g := RoadLogWeights(side, side, extra, 1, 16384, seed)
	g.SetName(fmt.Sprintf("cal-like-%.3g", scale))
	return g
}

// WikiLike generates a scale-free substitute for wikipedia-20051105: an
// RMAT digraph with ~1.63M·scale vertices and ~19.7M·scale arcs and uniform
// random integer weights in [1, 99] exactly as the paper assigns to Wiki.
// scale=1.0 matches the paper's input size.
func WikiLike(scale float64, seed uint64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	n := float64(wikiNodes) * scale
	s := int(math.Round(math.Log2(n)))
	if s < 6 {
		s = 6
	}
	ef := int(math.Round(float64(wikiEdges) * scale / float64(int64(1)<<uint(s))))
	if ef < 1 {
		ef = 1
	}
	g := RMAT(s, ef, 0.57, 0.19, 0.19, 1, 99, seed)
	g.SetName(fmt.Sprintf("wiki-like-%.3g", scale))
	return g
}

// Dataset names the two paper inputs for harness parameterization.
type Dataset int

const (
	// Cal is the road-network dataset (DIMACS Cal substitute).
	Cal Dataset = iota
	// Wiki is the scale-free dataset (wikipedia-20051105 substitute).
	Wiki
)

// String implements fmt.Stringer.
func (d Dataset) String() string {
	switch d {
	case Cal:
		return "Cal"
	case Wiki:
		return "Wiki"
	default:
		return fmt.Sprintf("Dataset(%d)", int(d))
	}
}

// Generate materializes the dataset at the given scale and seed.
func (d Dataset) Generate(scale float64, seed uint64) *graph.Graph {
	switch d {
	case Cal:
		return CalLike(scale, seed)
	case Wiki:
		return WikiLike(scale, seed)
	default:
		panic(fmt.Sprintf("gen: unknown dataset %d", int(d)))
	}
}
