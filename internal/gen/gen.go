// Package gen provides deterministic synthetic graph generators that stand
// in for the paper's datasets (see DESIGN.md, "substitutions"): a
// road-network-like random geometric graph for the Cal DIMACS input and an
// RMAT scale-free digraph for wikipedia-20051105, plus classic generators
// (grid, Erdős–Rényi, Barabási–Albert, Watts–Strogatz) used by tests,
// examples, and ablations.
//
// Every generator is a pure function of its parameters including the seed,
// so experiment outputs are reproducible bit-for-bit.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"energysssp/internal/graph"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x51_7cc1b727220a95))
}

// uniformWeight draws an integer weight in [lo, hi].
func uniformWeight(rng *rand.Rand, lo, hi int) graph.Weight {
	if hi <= lo {
		return graph.Weight(lo)
	}
	return graph.Weight(lo + rng.IntN(hi-lo+1))
}

// Grid generates a rows×cols 4-connected grid with uniform random integer
// weights in [wmin, wmax]; each undirected lattice edge becomes two arcs.
// Grids are the simplest high-diameter road-network proxy and are used
// heavily in tests because their shortest paths are easy to reason about.
func Grid(rows, cols, wmin, wmax int, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	n := rows * cols
	edges := make([]graph.Edge, 0, int64(4*n))
	id := func(r, c int) graph.VID { return graph.VID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				w := uniformWeight(rng, wmin, wmax)
				edges = append(edges,
					graph.Edge{U: id(r, c), V: id(r, c+1), W: w},
					graph.Edge{U: id(r, c+1), V: id(r, c), W: w})
			}
			if r+1 < rows {
				w := uniformWeight(rng, wmin, wmax)
				edges = append(edges,
					graph.Edge{U: id(r, c), V: id(r+1, c), W: w},
					graph.Edge{U: id(r+1, c), V: id(r, c), W: w})
			}
		}
	}
	g := graph.MustNew(n, edges)
	g.SetName(fmt.Sprintf("grid-%dx%d", rows, cols))
	return g
}

// RandomGeometric places n points uniformly in the unit square and connects
// pairs within the given radius, weighting each edge by the rounded
// Euclidean distance scaled by wscale (minimum 1). Neighbor search uses a
// spatial hash grid, so generation is O(n · expected-degree). Each
// undirected edge becomes two arcs. Road networks are approximately
// geometric: high diameter, small and uniform degree — exactly the traits
// the paper attributes to Cal.
func RandomGeometric(n int, radius float64, wscale int, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	cell := radius
	if cell <= 0 {
		cell = 1
	}
	cols := int(1/cell) + 1
	buckets := make(map[int][]int32, n)
	key := func(x, y float64) int {
		return int(y/cell)*cols + int(x/cell)
	}
	for i := 0; i < n; i++ {
		k := key(xs[i], ys[i])
		buckets[k] = append(buckets[k], int32(i))
	}
	var edges []graph.Edge
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := int(xs[i]/cell), int(ys[i]/cell)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				bx, by := cx+dx, cy+dy
				if bx < 0 || by < 0 || bx >= cols {
					continue
				}
				for _, j := range buckets[by*cols+bx] {
					if int(j) <= i {
						continue // handle each unordered pair once
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					d2 := ddx*ddx + ddy*ddy
					if d2 > r2 {
						continue
					}
					w := graph.Weight(math.Sqrt(d2) * float64(wscale))
					if w < 1 {
						w = 1
					}
					edges = append(edges,
						graph.Edge{U: graph.VID(i), V: j, W: w},
						graph.Edge{U: j, V: graph.VID(i), W: w})
				}
			}
		}
	}
	g := graph.MustNew(n, edges)
	g.SetName(fmt.Sprintf("rgg-%d", n))
	return g
}

// Road generates a connected road-network-like graph on a rows×cols lattice:
// a uniform random spanning tree (maze via randomized DFS) guarantees
// connectivity and a high, road-like diameter, and each remaining lattice
// edge is added independently with probability extra, tuning the average
// degree. Weights are uniform in [wmin, wmax]; every undirected edge becomes
// two arcs. This matches the structural profile of the DIMACS Cal input:
// high diameter, degree ≤ 4, average out-degree ≈ 2 + 4·extra·(1 − 1/... )
// (in practice ≈ 2(1 − 1/n) + 2·extra·(#non-tree lattice edges)/n).
func Road(rows, cols int, extra float64, wmin, wmax int, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	return roadWeighted(rows, cols, extra, rng, func() graph.Weight {
		return uniformWeight(rng, wmin, wmax)
	})
}

// RoadLogWeights is Road with log-uniform weights in [wmin, wmax]: most
// segments are short with a heavy tail of long ones, matching the travel
// times of DIMACS road networks (the Cal input mixes city blocks and
// highways). The weight spread is what makes one fixed delta a bad
// compromise — the property the paper's self-tuning exploits.
func RoadLogWeights(rows, cols int, extra float64, wmin, wmax int, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	lo, hi := math.Log(float64(wmin)), math.Log(float64(wmax)+1)
	return roadWeighted(rows, cols, extra, rng, func() graph.Weight {
		w := graph.Weight(math.Exp(lo + rng.Float64()*(hi-lo)))
		if w < graph.Weight(wmin) {
			w = graph.Weight(wmin)
		}
		return w
	})
}

func roadWeighted(rows, cols int, extra float64, rng *rand.Rand, weight func() graph.Weight) *graph.Graph {
	n := rows * cols
	id := func(r, c int) graph.VID { return graph.VID(r*cols + c) }
	type latticeEdge struct{ r1, c1, r2, c2 int }

	inTree := make(map[latticeEdge]bool, n)
	visited := make([]bool, n)
	// Iterative randomized DFS from a random cell.
	type cell struct{ r, c int }
	stack := []cell{{rng.IntN(rows), rng.IntN(cols)}}
	visited[id(stack[0].r, stack[0].c)] = true
	dirs := [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		perm := rng.Perm(4)
		advanced := false
		for _, pi := range perm {
			nr, nc := cur.r+dirs[pi][0], cur.c+dirs[pi][1]
			if nr < 0 || nc < 0 || nr >= rows || nc >= cols || visited[id(nr, nc)] {
				continue
			}
			visited[id(nr, nc)] = true
			e := latticeEdge{cur.r, cur.c, nr, nc}
			if cur.r > nr || (cur.r == nr && cur.c > nc) {
				e = latticeEdge{nr, nc, cur.r, cur.c}
			}
			inTree[e] = true
			stack = append(stack, cell{nr, nc})
			advanced = true
			break
		}
		if !advanced {
			stack = stack[:len(stack)-1]
		}
	}

	edges := make([]graph.Edge, 0, int(float64(n)*2.6))
	addUndirected := func(u, v graph.VID) {
		w := weight()
		edges = append(edges,
			graph.Edge{U: u, V: v, W: w},
			graph.Edge{U: v, V: u, W: w})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				e := latticeEdge{r, c, r, c + 1}
				if inTree[e] || rng.Float64() < extra {
					addUndirected(id(r, c), id(r, c+1))
				}
			}
			if r+1 < rows {
				e := latticeEdge{r, c, r + 1, c}
				if inTree[e] || rng.Float64() < extra {
					addUndirected(id(r, c), id(r+1, c))
				}
			}
		}
	}
	g := graph.MustNew(n, edges)
	g.SetName(fmt.Sprintf("road-%dx%d", rows, cols))
	return g
}

// RMAT generates a recursive-matrix scale-free digraph with 2^scale
// vertices and edgeFactor·2^scale arcs using partition probabilities
// (a, b, c, d); weights are uniform in [wmin, wmax]. With the Graph500
// parameters (0.57, 0.19, 0.19, 0.05) the degree distribution is heavy
// tailed like the Wiki hyperlink network.
func RMAT(scale, edgeFactor int, a, b, c float64, wmin, wmax int, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	n := 1 << uint(scale)
	m := edgeFactor * n
	edges := make([]graph.Edge, 0, m)
	for k := 0; k < m; k++ {
		u, v := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant: no bits set
			case r < a+b:
				v |= bit
			case r < a+b+c:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		edges = append(edges, graph.Edge{
			U: graph.VID(u), V: graph.VID(v),
			W: uniformWeight(rng, wmin, wmax),
		})
	}
	g := graph.MustNew(n, edges)
	g.SetName(fmt.Sprintf("rmat-%d-%d", scale, edgeFactor))
	return g
}

// ErdosRenyi generates a G(n, m) digraph: m arcs drawn uniformly with
// replacement, weights uniform in [wmin, wmax].
func ErdosRenyi(n, m, wmin, wmax int, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.VID(rng.IntN(n)),
			V: graph.VID(rng.IntN(n)),
			W: uniformWeight(rng, wmin, wmax),
		}
	}
	g := graph.MustNew(n, edges)
	g.SetName(fmt.Sprintf("er-%d-%d", n, m))
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches k undirected edges to existing vertices chosen proportionally to
// degree (implemented with the repeated-endpoint trick). Weights are uniform
// in [wmin, wmax].
func BarabasiAlbert(n, k, wmin, wmax int, seed uint64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	rng := newRNG(seed)
	var edges []graph.Edge
	// endpoint pool: each vertex appears once per incident edge endpoint.
	pool := make([]graph.VID, 0, 2*n*k)
	start := k + 1
	if start > n {
		start = n
	}
	// Seed clique among the first start vertices.
	for i := 0; i < start; i++ {
		for j := i + 1; j < start; j++ {
			w := uniformWeight(rng, wmin, wmax)
			edges = append(edges,
				graph.Edge{U: graph.VID(i), V: graph.VID(j), W: w},
				graph.Edge{U: graph.VID(j), V: graph.VID(i), W: w})
			pool = append(pool, graph.VID(i), graph.VID(j))
		}
	}
	for v := start; v < n; v++ {
		seen := map[graph.VID]bool{}
		for len(seen) < k {
			var t graph.VID
			if len(pool) == 0 {
				t = graph.VID(rng.IntN(v))
			} else {
				t = pool[rng.IntN(len(pool))]
			}
			if int(t) == v || seen[t] {
				if len(seen) >= v { // cannot find k distinct targets
					break
				}
				continue
			}
			seen[t] = true
			w := uniformWeight(rng, wmin, wmax)
			edges = append(edges,
				graph.Edge{U: graph.VID(v), V: t, W: w},
				graph.Edge{U: t, V: graph.VID(v), W: w})
			pool = append(pool, graph.VID(v), t)
		}
	}
	g := graph.MustNew(n, edges)
	g.SetName(fmt.Sprintf("ba-%d-%d", n, k))
	return g
}

// WattsStrogatz generates a small-world ring lattice: n vertices each
// connected to k nearest neighbors per side, with each edge rewired with
// probability beta. Weights are uniform in [wmin, wmax].
func WattsStrogatz(n, k int, beta float64, wmin, wmax int, seed uint64) *graph.Graph {
	rng := newRNG(seed)
	var edges []graph.Edge
	add := func(u, v graph.VID) {
		w := uniformWeight(rng, wmin, wmax)
		edges = append(edges,
			graph.Edge{U: u, V: v, W: w},
			graph.Edge{U: v, V: u, W: w})
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			if rng.Float64() < beta {
				for tries := 0; tries < 8; tries++ {
					cand := rng.IntN(n)
					if cand != u {
						v = cand
						break
					}
				}
			}
			if v != u {
				add(graph.VID(u), graph.VID(v))
			}
		}
	}
	g := graph.MustNew(n, edges)
	g.SetName(fmt.Sprintf("ws-%d-%d", n, k))
	return g
}
