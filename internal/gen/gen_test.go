package gen

import (
	"testing"
	"testing/quick"

	"energysssp/internal/graph"
)

func TestGridStructure(t *testing.T) {
	g := Grid(4, 5, 1, 10, 1)
	if g.NumVertices() != 20 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// 4x5 grid: horizontal 4*4=16, vertical 3*5=15, doubled as arcs.
	if g.NumEdges() != 2*(16+15) {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cc, largest := g.WeakComponents()
	if cc != 1 || largest != 20 {
		t.Fatalf("grid not connected: cc=%d largest=%d", cc, largest)
	}
}

func TestGridDeterminism(t *testing.T) {
	a := Grid(6, 6, 1, 99, 42)
	b := Grid(6, 6, 1, 99, 42)
	if !a.Equal(b) {
		t.Fatal("same seed produced different grids")
	}
	c := Grid(6, 6, 1, 99, 43)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical weights (suspicious)")
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(2000, 0.05, 1000, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	// Expected degree ≈ n·π·r² ≈ 15.7; allow a broad band.
	if s.AvgDegree < 8 || s.AvgDegree > 25 {
		t.Fatalf("unexpected average degree %.2f", s.AvgDegree)
	}
	// Symmetric arcs: every (u,v) must have a (v,u) of equal weight.
	seen := map[[2]graph.VID]graph.Weight{}
	for _, e := range g.Edges() {
		seen[[2]graph.VID{e.U, e.V}] = e.W
	}
	for k, w := range seen {
		if seen[[2]graph.VID{k[1], k[0]}] != w {
			t.Fatalf("asymmetric RGG edge %v", k)
		}
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 1, 99, 3)
	if g.NumVertices() != 1024 || g.NumEdges() != 8*1024 {
		t.Fatalf("rmat size n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	// RMAT must be skewed: max degree far above average.
	if float64(s.MaxDegree) < 4*s.AvgDegree {
		t.Fatalf("rmat not skewed: max=%d avg=%.1f", s.MaxDegree, s.AvgDegree)
	}
	if s.MinWeight < 1 || s.MaxWeight > 99 {
		t.Fatalf("weights out of [1,99]: %+v", s)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 3000, 1, 10, 11)
	if g.NumVertices() != 500 || g.NumEdges() != 3000 {
		t.Fatalf("er size n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(1000, 3, 1, 99, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.Vertices != 1000 {
		t.Fatalf("n = %d", s.Vertices)
	}
	cc, largest := g.WeakComponents()
	if cc != 1 || largest != 1000 {
		t.Fatalf("BA not connected: cc=%d", cc)
	}
	if float64(s.MaxDegree) < 3*s.AvgDegree {
		t.Fatalf("BA not skewed: max=%d avg=%.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestBarabasiAlbertTiny(t *testing.T) {
	// n smaller than k+1 must still terminate and be valid.
	g := BarabasiAlbert(3, 5, 1, 9, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 3, 0.1, 1, 50, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Each vertex initiates k edges (two arcs each) unless rewiring hit u.
	if g.NumEdges() < int64(200*3) {
		t.Fatalf("too few edges: %d", g.NumEdges())
	}
}

func TestRoadGenerator(t *testing.T) {
	g := Road(30, 40, 0.22, 1, 100, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cc, largest := g.WeakComponents()
	if cc != 1 || largest != 1200 {
		t.Fatalf("road graph not connected: cc=%d largest=%d", cc, largest)
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("lattice degree exceeded: %d", g.MaxDegree())
	}
}

func TestRoadLogWeightsHeavyTail(t *testing.T) {
	g := RoadLogWeights(40, 40, 0.22, 1, 16384, 6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.MinWeight < 1 || s.MaxWeight > 16384 {
		t.Fatalf("weights out of range: %+v", s)
	}
	// Log-uniform: the mean sits far below the midpoint of the range
	// (for log-uniform on [1, 16384], E[w] = (w_max-1)/ln(w_max) ≈ 1690).
	if s.AvgWeight < 800 || s.AvgWeight > 3000 {
		t.Fatalf("avg weight %.0f not log-uniform-like", s.AvgWeight)
	}
	// Heavy tail: a decent fraction of edges below 100 AND above 4096.
	var small, large int
	for _, e := range g.Edges() {
		if e.W < 100 {
			small++
		}
		if e.W > 4096 {
			large++
		}
	}
	total := int(g.NumEdges())
	if small < total/10 || large < total/20 {
		t.Fatalf("weight spread too narrow: %d small, %d large of %d", small, large, total)
	}
}

func TestCalLikeSmall(t *testing.T) {
	g := CalLike(0.002, 21) // ~3.8k vertices
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.Vertices < 3000 || s.Vertices > 4500 {
		t.Fatalf("cal-like size %d", s.Vertices)
	}
	// Road-like: connected, small average degree in the DIMACS Cal
	// ballpark (~2.45 arcs per vertex).
	if s.Components != 1 {
		t.Fatalf("cal-like not connected: %d components", s.Components)
	}
	if s.AvgDegree < 2.0 || s.AvgDegree > 3.0 {
		t.Fatalf("cal-like degree %.2f", s.AvgDegree)
	}
	// High-diameter check: BFS hops from 0 should be much larger than
	// log2(n) ≈ 12.
	if s.HopsSample < 60 {
		t.Fatalf("cal-like diameter too small: hops=%d", s.HopsSample)
	}
}

func TestWikiLikeSmall(t *testing.T) {
	g := WikiLike(0.002, 22) // ~2^12 vertices
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.MinWeight < 1 || s.MaxWeight > 99 {
		t.Fatalf("wiki-like weights: %+v", s)
	}
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Fatalf("wiki-like not heavy-tailed: max=%d avg=%.1f", s.MaxDegree, s.AvgDegree)
	}
	// Low diameter: the giant component should be reachable in few hops.
	if s.HopsSample > 30 {
		t.Fatalf("wiki-like diameter too large: hops=%d", s.HopsSample)
	}
}

func TestDatasetEnum(t *testing.T) {
	if Cal.String() != "Cal" || Wiki.String() != "Wiki" {
		t.Fatal("dataset names")
	}
	if Dataset(99).String() == "" {
		t.Fatal("unknown dataset String should not be empty")
	}
	g := Cal.Generate(0.001, 1)
	if g.NumVertices() == 0 {
		t.Fatal("Cal.Generate empty")
	}
	g = Wiki.Generate(0.001, 1)
	if g.NumVertices() == 0 {
		t.Fatal("Wiki.Generate empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset Generate should panic")
		}
	}()
	Dataset(99).Generate(1, 1)
}

// Property: all generators produce structurally valid graphs with weights in
// range, for arbitrary small parameters.
func TestGeneratorsValidProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%100 + 2
		m := int(mRaw) % 500
		for _, g := range []*graph.Graph{
			ErdosRenyi(n, m, 1, 99, seed),
			BarabasiAlbert(n, int(mRaw)%4+1, 1, 99, seed),
			WattsStrogatz(n, int(mRaw)%3+1, 0.2, 1, 99, seed),
			Grid(int(nRaw)%10+1, int(mRaw)%10+1, 1, 99, seed),
		} {
			if g.Validate() != nil {
				return false
			}
			s := g.ComputeStats()
			if s.Edges > 0 && (s.MinWeight < 1 || s.MaxWeight > 99) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterminism(t *testing.T) {
	a := RMAT(8, 4, 0.57, 0.19, 0.19, 1, 99, 77)
	b := RMAT(8, 4, 0.57, 0.19, 0.19, 1, 99, 77)
	if !a.Equal(b) {
		t.Fatal("same-seed RMAT differs")
	}
}
