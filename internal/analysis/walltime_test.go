package analysis

import "testing"

func TestWallTime(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "flags time.Now inside a For kernel",
			src: `package a

import (
	"time"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) {
	p.For(10, func(lo, hi int) {
		t0 := time.Now()
		_ = t0
	})
}
`,
			want: []int{11},
		},
		{
			name: "flags time.Since and time.Sleep inside Dynamic/Run kernels",
			src: `package a

import (
	"time"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool, start time.Time) {
	p.Dynamic(10, 2, func(lo, hi int) {
		d := time.Since(start)
		_ = d
	})
	p.Run(func(w int) {
		time.Sleep(time.Millisecond)
	})
}
`,
			want: []int{11, 15},
		},
		{
			name: "allows wall-clock at the solver level outside kernels",
			src: `package a

import (
	"time"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) time.Duration {
	start := time.Now()
	p.For(10, func(lo, hi int) {
		_ = lo + hi
	})
	return time.Since(start)
}
`,
		},
		{
			name: "ignores same-named methods on non-parallel types",
			src: `package a

import "time"

type fake struct{}

func (fake) For(n int, body func(lo, hi int)) { body(0, n) }

func f() {
	var fk fake
	fk.For(1, func(lo, hi int) {
		t0 := time.Now()
		_ = t0
	})
}
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := poolFixture(t, c.src)
			expectLines(t, runRule(t, &WallTime{}, p), c.want...)
		})
	}
}
