package analysis

import "testing"

func TestWallTime(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "flags time.Now inside a For kernel",
			src: `package a

import (
	"time"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) {
	p.For(10, func(lo, hi int) {
		t0 := time.Now()
		_ = t0
	})
}
`,
			want: []int{11},
		},
		{
			name: "flags time.Since and time.Sleep inside Dynamic/Run kernels",
			src: `package a

import (
	"time"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool, start time.Time) {
	p.Dynamic(10, 2, func(lo, hi int) {
		d := time.Since(start)
		_ = d
	})
	p.Run(func(w int) {
		time.Sleep(time.Millisecond)
	})
}
`,
			want: []int{11, 15},
		},
		{
			name: "allows wall-clock at the solver level outside kernels",
			src: `package a

import (
	"time"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) time.Duration {
	start := time.Now()
	p.For(10, func(lo, hi int) {
		_ = lo + hi
	})
	return time.Since(start)
}
`,
		},
		{
			name: "flags module helpers that reach the wall clock transitively",
			src: `package a

import (
	"time"

	"example.com/fix/internal/parallel"
)

func stamp() int64 { return mark() }

func mark() int64 { return time.Now().UnixNano() }

func pure(x int) int { return x * 2 }

func f(p *parallel.Pool, out []int64) {
	p.For(10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = stamp() // line 18: reaches time.Now via stamp -> mark
			_ = pure(i)      // clean helper: allowed
		}
	})
}
`,
			want: []int{18},
		},
		{
			name: "ignores same-named methods on non-parallel types",
			src: `package a

import "time"

type fake struct{}

func (fake) For(n int, body func(lo, hi int)) { body(0, n) }

func f() {
	var fk fake
	fk.For(1, func(lo, hi int) {
		t0 := time.Now()
		_ = t0
	})
}
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := poolFixture(t, c.src)
			expectLines(t, runRule(t, &WallTime{}, p), c.want...)
		})
	}
}
