package analysis

// In-memory fixture harness for the rule tests: fixture packages are plain
// source strings, parsed with go/parser and type-checked through the same
// checkFiles path the module loader uses. Fixture packages may import each
// other (e.g. a stub "parallel" package providing Pool) and the standard
// library; stdlib imports resolve through one shared source-mode importer so
// its type-checking cost is paid once per test binary.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

var (
	testFset = token.NewFileSet()
	stdImp   = importer.ForCompiler(testFset, "source", nil)
)

// fixtureMod is the module path used by all in-memory fixtures.
const fixtureMod = "example.com/fix"

// checkFixture type-checks the fixture packages (import path -> filename ->
// source) and returns a Pass for the target import path.
func checkFixture(t *testing.T, pkgs map[string]map[string]string, target string) *Pass {
	t.Helper()
	parsed := make(map[string][]*ast.File)
	for path, files := range pkgs {
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(testFset, path+"/"+name, files[name],
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse %s/%s: %v", path, name, err)
			}
			parsed[path] = append(parsed[path], f)
		}
	}

	checked := make(map[string]*types.Package)
	infos := make(map[string]*types.Info)
	var load func(path string) (*types.Package, error)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if _, ok := parsed[path]; ok {
			return load(path)
		}
		return stdImp.Import(path)
	})
	load = func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		pkg, info, err := checkFiles(testFset, path, parsed[path], imp)
		if err != nil {
			return nil, err
		}
		checked[path] = pkg
		infos[path] = info
		return pkg, nil
	}
	// Load every fixture package (not just the target) so the Module below
	// carries the full call graph the cross-procedural rules expect.
	paths := make([]string, 0, len(parsed))
	for path := range parsed {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if _, err := load(path); err != nil {
			t.Fatalf("type-check %s: %v", path, err)
		}
	}
	mod := &Module{Fset: testFset, Path: fixtureMod}
	var targetPass *Pass
	for _, path := range paths {
		p := &Pass{
			Fset:    testFset,
			ModPath: fixtureMod,
			Path:    path,
			Files:   parsed[path],
			Pkg:     checked[path],
			Info:    infos[path],
			Mod:     mod,
			ignores: collectIgnores(testFset, parsed[path]),
		}
		mod.Pkgs = append(mod.Pkgs, p)
		if path == target {
			targetPass = p
		}
	}
	if targetPass == nil {
		t.Fatalf("target package %s not among fixtures", target)
	}
	return targetPass
}

// singleFixture wraps checkFixture for the common one-package case.
func singleFixture(t *testing.T, src string) *Pass {
	t.Helper()
	path := fixtureMod + "/a"
	return checkFixture(t, map[string]map[string]string{path: {"a.go": src}}, path)
}

// runRule applies the checker and drops findings suppressed by lint:ignore,
// mirroring Run's filtering.
func runRule(t *testing.T, c Checker, p *Pass) []Finding {
	t.Helper()
	var out []Finding
	for _, f := range c.Check(p) {
		if p.ignored(f.Pos, c.ID()) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// findingLines extracts the sorted line numbers of the findings.
func findingLines(fs []Finding) []int {
	lines := make([]int, len(fs))
	for i, f := range fs {
		lines[i] = f.Pos.Line
	}
	sort.Ints(lines)
	return lines
}

func expectLines(t *testing.T, fs []Finding, want ...int) {
	t.Helper()
	got := findingLines(fs)
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s) on lines %v, want lines %v\nfindings: %v", len(got), got, want, fs)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding lines %v, want %v\nfindings: %v", got, want, fs)
		}
	}
}

// poolStub is a minimal stand-in for internal/parallel: the rules recognize
// kernel launches by (package name "parallel", type name "Pool"), so the
// stub triggers them without depending on the real package.
var poolStub = map[string]string{"pool.go": `package parallel

type Pool struct{ size int }

func NewPool(n int) *Pool                                  { return &Pool{size: n} }
func (p *Pool) Run(f func(worker int))                     { f(0) }
func (p *Pool) For(n int, body func(lo, hi int))           { body(0, n) }
func (p *Pool) Dynamic(n, g int, body func(lo, hi int))    { body(0, n) }
func (p *Pool) DynamicWorker(n, g int, b func(w, l, h int)) { b(0, 0, n) }
func (p *Pool) SumInt64(n int, f func(i int) int64) int64  { return 0 }
func (p *Pool) Close()                                     {}
`}

// poolFixture type-checks src (which may import the parallel stub) and
// returns the Pass for it.
func poolFixture(t *testing.T, src string) *Pass {
	t.Helper()
	path := fixtureMod + "/a"
	return checkFixture(t, map[string]map[string]string{
		fixtureMod + "/internal/parallel": poolStub,
		path:                              {"a.go": src},
	}, path)
}
