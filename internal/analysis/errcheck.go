package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrCheck flags discarded error returns in non-test code: bare expression
// statements whose call returns an error, and explicit discards through the
// blank identifier (`_ = f()`). Errors in this repo carry real signal — a
// livelock guard tripping, an out-of-range source, a malformed graph file —
// and every silent discard found in the wild so far masked a decision that
// belonged to the caller.
//
// A small allowlist covers calls whose error is unreachable or definitional
// noise: fmt printing to stdout/stderr, and writes into in-memory sinks
// (strings.Builder, bytes.Buffer) that are documented never to fail.
//
// Deferred calls are covered too: `defer f.Close()` on a writable file is
// the classic shape that loses a flush failure. The fix is the closeFile
// pattern (a helper folding the Close error into a named return), used by
// cmd/flight. One deferred idiom is allowlisted: `defer w.Flush()` on a
// sticky-error writer (bufio.Writer, tabwriter.Writer) is sound when the
// function also checks the writer's error state on the main path, because
// the first failure latches — the deferred Flush is a best-effort drain,
// not the error's only exit.
type ErrCheck struct{}

func (*ErrCheck) ID() string { return "errcheck" }

func (*ErrCheck) Doc() string {
	return "no discarded error returns (`_ = f()`, bare calls, or deferred calls) in non-test code"
}

func (r *ErrCheck) Check(p *Pass) []Finding {
	var out []Finding
	flag := func(call *ast.CallExpr, how string) {
		out = append(out, Finding{
			Pos:      p.Position(call.Pos()),
			Rule:     r.ID(),
			Severity: Error,
			Message:  fmt.Sprintf("%s discards an error returned by %s; handle it or lint:ignore with a reason", how, callName(p, call)),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if ok && returnsError(p, call) && !allowedDiscard(p, call) {
					flag(call, "bare call")
				}
			case *ast.DeferStmt:
				if returnsError(p, st.Call) && !deferredAllowed(p, st.Call) {
					flag(st.Call, "deferred call")
				}
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name != "_" {
						continue
					}
					call, t := blankRHS(p, st, i)
					if call != nil && isErrorType(t) && !allowedDiscard(p, call) {
						flag(call, "`_ =` assignment")
					}
				}
			}
			return true
		})
	}
	return out
}

// blankRHS resolves the call expression and static type feeding the i-th
// left-hand side of an assignment, handling both the one-call-many-results
// form and element-wise assignment. Non-call right-hand sides return nil:
// discarding an existing variable is an explicit, visible choice.
func blankRHS(p *Pass, st *ast.AssignStmt, i int) (*ast.CallExpr, types.Type) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil, nil
		}
		tuple, ok := p.Info.Types[call].Type.(*types.Tuple)
		if !ok || i >= tuple.Len() {
			return nil, nil
		}
		return call, tuple.At(i).Type()
	}
	if i < len(st.Rhs) {
		call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
		if !ok {
			return nil, nil
		}
		return call, p.Info.Types[call].Type
	}
	return nil, nil
}

// returnsError reports whether any result of the call is of type error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Info.Types[call].Type
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// allowedDiscard reports whether the call's error is conventionally
// discardable: fmt printing to stdout or to an in-memory sink, or a method
// on strings.Builder / bytes.Buffer (documented to never return an error).
func allowedDiscard(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && inMemoryOrStdSink(p, call.Args[0])
		}
	case "strings", "bytes":
		// Methods on strings.Builder and bytes.Buffer never return a
		// non-nil error (per their documentation).
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return isSinkType(recv.Type())
		}
	}
	return false
}

// deferredAllowed reports whether a deferred call's error may be dropped:
// everything allowedDiscard accepts, plus Flush on a sticky-error writer
// (bufio.Writer, tabwriter.Writer) — the first write failure latches in the
// writer, so the main path's error check already observes anything the
// deferred drain would report.
func deferredAllowed(p *Pass, call *ast.CallExpr) bool {
	if allowedDiscard(p, call) {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Flush" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && isSinkType(recv.Type())
}

// inMemoryOrStdSink reports whether the writer expression is os.Stdout,
// os.Stderr, or an in-memory sink type.
func inMemoryOrStdSink(p *Pass, w ast.Expr) bool {
	if sel, ok := ast.Unparen(w).(*ast.SelectorExpr); ok {
		if obj, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
			if obj.Name() == "Stdout" || obj.Name() == "Stderr" {
				return true
			}
		}
	}
	return isSinkType(p.Info.Types[w].Type)
}

// isSinkType reports whether t is a (pointer to a) writer type for which
// discarding per-write errors is sound: in-memory builders/buffers that
// cannot fail, and sticky-error writers (bufio.Writer, tabwriter.Writer)
// where the first failure latches and is reported by Flush — which this rule
// still requires callers to check, since a bare Flush() is itself flagged.
func isSinkType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer", "text/tabwriter.Writer":
		return true
	}
	return false
}

// typeName returns the bare name of a (possibly pointer-to) named type.
func typeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// callName renders a readable name for the called function.
func callName(p *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return fmt.Sprintf("(%s).%s", typeName(recv.Type()), fn.Name())
			}
			if fn.Pkg() != nil {
				return fn.Pkg().Name() + "." + fn.Name()
			}
		}
		return fun.Sel.Name
	}
	return "call"
}
