package analysis

import "testing"

func TestPoolCapture(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "flags compound assignment to a captured scalar",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	total := 0
	p.For(100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += i
		}
	})
	return total
}
`,
			want: []int{9},
		},
		{
			name: "flags increment of a captured counter in Dynamic",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	count := 0
	p.Dynamic(100, 8, func(lo, hi int) {
		count++
	})
	return count
}
`,
			want: []int{8},
		},
		{
			name: "flags plain assignment to a captured package-level variable",
			src: `package a

import "example.com/fix/internal/parallel"

var last int

func f(p *parallel.Pool) {
	p.Run(func(w int) {
		last = w
	})
}
`,
			want: []int{9},
		},
		{
			name: "allows per-worker slots through index expressions",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	parts := make([]int, 8)
	p.DynamicWorker(100, 16, func(w, lo, hi int) {
		parts[w] += hi - lo
	})
	return parts[0]
}
`,
		},
		{
			name: "allows sync/atomic counters",
			src: `package a

import (
	"sync/atomic"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) int64 {
	var n atomic.Int64
	p.For(100, func(lo, hi int) {
		n.Add(int64(hi - lo))
	})
	return n.Load()
}
`,
		},
		{
			name: "allows mutex-guarded callbacks",
			src: `package a

import (
	"sync"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) int {
	var mu sync.Mutex
	total := 0
	p.For(100, func(lo, hi int) {
		mu.Lock()
		total += hi - lo
		mu.Unlock()
	})
	return total
}
`,
		},
		{
			name: "allows locals and parameters declared inside the callback",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) {
	p.For(100, func(lo, hi int) {
		s := 0
		s += lo
		lo = hi
		_ = s
	})
}
`,
		},
		{
			name: "allows writes outside the callback",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	total := 0
	p.For(100, func(lo, hi int) {
		_ = lo
	})
	total = 7
	return total
}
`,
		},
		{
			// The edge-partition advance shape: a worker closure built once,
			// stored in a struct field, and launched repeatedly via Run. Each
			// worker binary-searches a shared prefix array (reads only) and
			// appends to its own per-worker buffer slot — all of which must
			// stay clean even though the closure reaches Run as an identifier
			// rather than a literal.
			name: "allows the stored edge-partition worker",
			src: `package a

import "example.com/fix/internal/parallel"

type kern struct {
	prefix []int64
	bufs   [][]int32
	worker func(w int)
}

func newKern() *kern {
	k := &kern{prefix: make([]int64, 9), bufs: make([][]int32, 8)}
	k.worker = func(w int) {
		lo, hi := k.prefix[w], k.prefix[w+1]
		vi := search(k.prefix, lo)
		for e := lo; e < hi; {
			for k.prefix[vi+1] <= e {
				vi++
			}
			seg := k.prefix[vi+1]
			if seg > hi {
				seg = hi
			}
			k.bufs[w] = append(k.bufs[w], int32(vi))
			e = seg
		}
	}
	return k
}

func search(prefix []int64, x int64) int {
	lo, hi := 0, len(prefix)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if prefix[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func (k *kern) advance(p *parallel.Pool) { p.Run(k.worker) }
`,
		},
		{
			// Same stored-closure launch shape, but the body races on a
			// captured scalar. Only reachable through the stored-kernel
			// tracing: the literal never appears inside the Run call.
			name: "flags captured scalar in a stored kernel closure",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	relaxed := 0
	worker := func(w int) {
		relaxed++
	}
	p.Run(worker)
	return relaxed
}
`,
			want: []int{8},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := poolFixture(t, c.src)
			expectLines(t, runRule(t, &PoolCapture{}, p), c.want...)
		})
	}
}
