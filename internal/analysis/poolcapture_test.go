package analysis

import "testing"

func TestPoolCapture(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "flags compound assignment to a captured scalar",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	total := 0
	p.For(100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += i
		}
	})
	return total
}
`,
			want: []int{9},
		},
		{
			name: "flags increment of a captured counter in Dynamic",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	count := 0
	p.Dynamic(100, 8, func(lo, hi int) {
		count++
	})
	return count
}
`,
			want: []int{8},
		},
		{
			name: "flags plain assignment to a captured package-level variable",
			src: `package a

import "example.com/fix/internal/parallel"

var last int

func f(p *parallel.Pool) {
	p.Run(func(w int) {
		last = w
	})
}
`,
			want: []int{9},
		},
		{
			name: "allows per-worker slots through index expressions",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	parts := make([]int, 8)
	p.DynamicWorker(100, 16, func(w, lo, hi int) {
		parts[w] += hi - lo
	})
	return parts[0]
}
`,
		},
		{
			name: "allows sync/atomic counters",
			src: `package a

import (
	"sync/atomic"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) int64 {
	var n atomic.Int64
	p.For(100, func(lo, hi int) {
		n.Add(int64(hi - lo))
	})
	return n.Load()
}
`,
		},
		{
			name: "allows mutex-guarded callbacks",
			src: `package a

import (
	"sync"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) int {
	var mu sync.Mutex
	total := 0
	p.For(100, func(lo, hi int) {
		mu.Lock()
		total += hi - lo
		mu.Unlock()
	})
	return total
}
`,
		},
		{
			name: "allows locals and parameters declared inside the callback",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) {
	p.For(100, func(lo, hi int) {
		s := 0
		s += lo
		lo = hi
		_ = s
	})
}
`,
		},
		{
			name: "allows writes outside the callback",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) int {
	total := 0
	p.For(100, func(lo, hi int) {
		_ = lo
	})
	total = 7
	return total
}
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := poolFixture(t, c.src)
			expectLines(t, runRule(t, &PoolCapture{}, p), c.want...)
		})
	}
}
