package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PoolCapture flags writes to captured shared variables inside parallel.Pool
// kernel callbacks. Kernel bodies run concurrently on worker goroutines, so
// a plain assignment to a variable declared outside the callback is a data
// race unless every worker writes a disjoint slot. The rule permits the
// repo's three sanctioned sharing patterns:
//
//   - per-worker slots: writes through an index/field expression
//     (partial[w].v += s) — the indexed location, not the binding, is shared
//   - sync/atomic: mutation goes through method calls, never assignment
//   - mutex-protected sections: a callback that locks a sync (RW)Mutex is
//     assumed to guard its shared writes and is skipped wholesale
//
// The check is intentionally conservative about aliasing (writes through
// captured pointers or slice elements are not modeled); it exists to catch
// the classic reduction-into-a-captured-scalar bug before -race does.
type PoolCapture struct{}

func (*PoolCapture) ID() string { return "poolcapture" }

func (*PoolCapture) Doc() string {
	return "no unguarded writes to captured variables inside parallel.Pool kernel callbacks"
}

func (r *PoolCapture) Check(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		kernelCallbacks(p, f, func(_ *ast.CallExpr, lit *ast.FuncLit) {
			if locksMutex(p, lit) {
				return
			}
			report := func(id *ast.Ident, verb string) {
				obj, ok := p.Info.Uses[id].(*types.Var)
				if !ok || obj.IsField() {
					return
				}
				if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
					return // declared inside the callback (param or local)
				}
				out = append(out, Finding{
					Pos:      p.Position(id.Pos()),
					Rule:     r.ID(),
					Severity: Error,
					Message: fmt.Sprintf("%s of captured variable %q inside a parallel.Pool kernel callback; use per-worker slots, sync/atomic, or a mutex",
						verb, id.Name),
				})
			}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.FuncLit:
					if st != lit {
						return false // nested literals run where they are invoked
					}
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
							report(id, "assignment")
						}
					}
				case *ast.IncDecStmt:
					if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
						report(id, "increment/decrement")
					}
				}
				return true
			})
		})
	}
	return out
}

// locksMutex reports whether the function literal calls Lock/RLock on a
// sync.Mutex or sync.RWMutex anywhere in its body.
func locksMutex(p *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
		}
		return !found
	})
	return found
}
