package analysis

import "testing"

// layering fixtures: stub packages for each layer the rules reference.
var layerStubs = map[string]map[string]string{
	fixtureMod + "/internal/plot":    {"plot.go": "package plot\n\nconst X = 1\n"},
	fixtureMod + "/internal/harness": {"harness.go": "package harness\n\nconst X = 1\n"},
	fixtureMod + "/internal/graph":   {"graph.go": "package graph\n\nconst X = 1\n"},
	fixtureMod + "/internal/sssp":    {"sssp.go": "package sssp\n\nconst X = 1\n"},
	fixtureMod + "/cmd/tool":         {"tool.go": "package tool\n\nconst X = 1\n"},
}

func layeringFixture(t *testing.T, path, src string) *Pass {
	t.Helper()
	pkgs := make(map[string]map[string]string, len(layerStubs)+1)
	for p, files := range layerStubs {
		pkgs[p] = files
	}
	pkgs[path] = map[string]string{"x.go": src}
	return checkFixture(t, pkgs, path)
}

func TestLayering(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []int
	}{
		{
			name: "algorithm package must not import plot",
			path: fixtureMod + "/internal/core",
			src: `package core
import _ "example.com/fix/internal/plot"
`,
			want: []int{2},
		},
		{
			name: "algorithm package must not import harness",
			path: fixtureMod + "/internal/sssp/inner",
			src: `package inner
import _ "example.com/fix/internal/harness"
`,
			want: []int{2},
		},
		{
			name: "base layer must not import upward into sssp",
			path: fixtureMod + "/internal/graph/sub",
			src: `package sub
import _ "example.com/fix/internal/sssp"
`,
			want: []int{2},
		},
		{
			name: "no internal package may import cmd",
			path: fixtureMod + "/internal/trace",
			src: `package trace
import _ "example.com/fix/cmd/tool"
`,
			want: []int{2},
		},
		{
			name: "algorithm package may import base layers",
			path: fixtureMod + "/internal/core",
			src: `package core
import _ "example.com/fix/internal/graph"
`,
		},
		{
			name: "commands may import anything",
			path: fixtureMod + "/cmd/other",
			src: `package other
import (
	_ "example.com/fix/internal/harness"
	_ "example.com/fix/internal/plot"
)
`,
		},
		{
			name: "stdlib imports are never layering findings",
			path: fixtureMod + "/internal/sssp/other",
			src: `package other
import _ "sort"
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := layeringFixture(t, c.path, c.src)
			expectLines(t, runRule(t, &Layering{}, p), c.want...)
		})
	}
}
