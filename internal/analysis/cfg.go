package analysis

import (
	"go/ast"
	"go/token"
)

// This file implements the intra-procedural control-flow graph the
// flow-aware rules (leakspawn, hotescape) are built on. The CFG is
// structural: it is derived from the statement syntax in one pass, so it is
// cheap (no fixed-point iteration), deterministic, and precise enough for
// the path questions the rules ask — "is this statement executed repeatedly
// (loop depth)?", "does a guard statement reach this spawn?". Panics and
// runtime aborts are deliberately not modeled: every rule using the CFG
// treats them as program exit, which only ever makes the rules more
// conservative.

// Block is one basic block: a maximal sequence of statements with a single
// entry and single exit. Nodes holds the statements (and the controlling
// expressions of branches) in execution order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// LoopDepth counts the enclosing for/range statements at the block's
	// position: 0 for straight-line function code, 1 inside a loop body,
	// 2 inside a nested loop, and so on.
	LoopDepth int
}

// CFG is the control-flow graph of one function body. Entry starts the
// body; Exit is the single synthetic join for every return path.
type CFG struct {
	Entry, Exit *Block
	Blocks      []*Block

	// stmtBlock maps each statement (and branch condition expression) to
	// the block that executes it.
	stmtBlock map[ast.Node]*Block
}

// cfgBuilder carries the construction state: the current insertion block
// and the branch-target stack for break/continue/goto resolution.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// breaks is the unified stack of enclosing breakable constructs in
	// nesting order: loops carry a continue target, switches and selects
	// do not.
	breaks []breakable
	// labels and gotos pair up goto statements with their label blocks in
	// a final resolution pass.
	labels map[string]*Block
	gotos  []cfgGoto
	// pendingLabel carries a label name from a LabeledStmt to the loop or
	// switch it wraps, so labeled break/continue resolve.
	pendingLabel string
	depth        int
}

type breakable struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type cfgGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of a function body. Nested
// function literals are NOT inlined: a FuncLit appears as an ordinary node
// in its defining block (callers build a separate CFG for the literal's own
// body when they need one).
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{stmtBlock: make(map[ast.Node]*Block)}
	b := &cfgBuilder{cfg: c, labels: make(map[string]*Block)}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.stmtList(body.List)
	// Fall-through from the last statement reaches the exit.
	b.link(b.cur, c.Exit)
	for _, g := range b.gotos {
		if dst := b.labels[g.label]; dst != nil {
			b.link(g.from, dst)
		}
	}
	return c
}

// BlockFor returns the block executing the innermost statement that
// contains pos, or nil if pos is outside every recorded statement. The
// lookup is by source interval, so expressions inside a statement resolve
// to that statement's block.
func (c *CFG) BlockFor(pos token.Pos) *Block {
	var best *Block
	var bestSpan token.Pos = 1 << 60
	for n, blk := range c.stmtBlock {
		if n.Pos() <= pos && pos <= n.End() {
			if span := n.End() - n.Pos(); span < bestSpan {
				best, bestSpan = blk, span
			}
		}
	}
	return best
}

// LoopDepth reports the loop depth of the innermost statement containing
// pos (0 when pos maps to no recorded statement).
func (c *CFG) LoopDepth(pos token.Pos) int {
	if b := c.BlockFor(pos); b != nil {
		return b.LoopDepth
	}
	return 0
}

// Reaches reports whether control can flow from block `from` to block `to`
// along CFG edges (true when from == to).
func (c *CFG) Reaches(from, to *Block) bool {
	if from == nil || to == nil {
		return false
	}
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks), LoopDepth: b.depth}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add records a node in the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil || n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.cfg.stmtBlock[n] = b.cur
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being entered.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmt threads one statement through the graph. After a terminating
// statement (return, break, …) b.cur becomes nil: subsequent statements are
// unreachable and get fresh predecessor-less blocks.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		cond := b.cur
		after := b.newBlock()
		b.cur = b.newBlock()
		b.link(cond, b.cur)
		b.stmt(st.Body)
		b.link(b.cur, after)
		if st.Else != nil {
			b.cur = b.newBlock()
			b.link(cond, b.cur)
			b.stmt(st.Else)
			b.link(b.cur, after)
		} else {
			b.link(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		after := b.newBlock()
		b.cur = head
		if st.Cond != nil {
			b.add(st.Cond)
			b.link(head, after)
		}
		b.depth++
		body := b.newBlock()
		post := b.newBlock()
		b.link(head, body)
		b.breaks = append(b.breaks, breakable{label: label, brk: after, cont: post})
		b.cur = body
		b.stmt(st.Body)
		b.link(b.cur, post)
		b.cur = post
		if st.Post != nil {
			b.add(st.Post)
		}
		b.depth--
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.link(post, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(st.X)
		head := b.newBlock()
		b.link(b.cur, head)
		after := b.newBlock()
		b.link(head, after) // empty collection
		b.depth++
		body := b.newBlock()
		b.link(head, body)
		b.breaks = append(b.breaks, breakable{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(st.Body)
		b.link(b.cur, head)
		b.depth--
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		var init ast.Stmt
		var tag ast.Node
		var body *ast.BlockStmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			init, body = sw.Init, sw.Body
			if sw.Tag != nil {
				tag = sw.Tag
			}
		} else {
			tsw := st.(*ast.TypeSwitchStmt)
			init, tag, body = tsw.Init, tsw.Assign, tsw.Body
		}
		if init != nil {
			b.add(init)
		}
		if tag != nil {
			b.add(tag)
		}
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, breakable{label: label, brk: after})
		var prevBody *Block // for fallthrough linking
		hasDefault := false
		for _, cl := range body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			caseBlk := b.newBlock()
			b.link(head, caseBlk)
			if prevBody != nil {
				b.link(prevBody, caseBlk) // fallthrough edge (conservative)
			}
			b.cur = caseBlk
			for _, e := range cc.List {
				b.add(e)
			}
			b.stmtList(cc.Body)
			prevBody = b.cur
			b.link(b.cur, after)
		}
		if !hasDefault {
			b.link(head, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		b.add(st) // the select itself is a node (rules inspect it)
		after := b.newBlock()
		b.breaks = append(b.breaks, breakable{label: label, brk: after})
		any := false
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			caseBlk := b.newBlock()
			b.link(head, caseBlk)
			b.cur = caseBlk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, after)
			any = true
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if any {
			b.cur = after
		} else {
			b.cur = nil // empty select blocks forever
		}

	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.link(b.cur, lbl)
		b.cur = lbl
		b.labels[st.Label.Name] = lbl
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(st)
		switch st.Tok {
		case token.BREAK:
			b.link(b.cur, b.breakTarget(st.Label))
			b.cur = nil
		case token.CONTINUE:
			b.link(b.cur, b.continueTarget(st.Label))
			b.cur = nil
		case token.GOTO:
			b.gotos = append(b.gotos, cfgGoto{from: b.cur, label: st.Label.Name})
			b.cur = nil
		case token.FALLTHROUGH:
			// handled structurally by the prevBody link in switch
		}

	case *ast.ReturnStmt:
		b.add(st)
		b.link(b.cur, b.cfg.Exit)
		b.cur = nil

	default:
		// Straight-line statements: decl, assign, expr, send, go, defer,
		// inc/dec, empty.
		b.add(s)
	}
}

func (b *cfgBuilder) breakTarget(label *ast.Ident) *Block {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if label == nil || b.breaks[i].label == label.Name {
			return b.breaks[i].brk
		}
	}
	return b.cfg.Exit // unresolvable label: conservative
}

func (b *cfgBuilder) continueTarget(label *ast.Ident) *Block {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if b.breaks[i].cont == nil {
			continue // switch/select: continue skips past it
		}
		if label == nil || b.breaks[i].label == label.Name {
			return b.breaks[i].cont
		}
	}
	return b.cfg.Exit
}
