package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotEscape extends the hotalloc gate with the two allocation shapes that
// survive review because they look innocent at a glance: slice growth and
// closure creation inside loops on the per-iteration hot path. Both are
// judged with the intra-procedural CFG so only constructs that actually sit
// at loop depth >= 1 are flagged.
//
// An append at loop depth >= 1 reallocates every time capacity runs out —
// per solver iteration, on every worker. It is accepted when the growth is
// amortized by one of the idioms the kernels use:
//
//   - the destination was pre-sized with a three-argument make;
//   - the destination is reset with a [:0] reslice (buffer reuse, as in
//     Engine.Advance's e.bufs[w] = e.bufs[w][:0]);
//   - the destination is banked back to persistent storage in the same
//     function (buf := kn.sc.bufs[w]; ... append ...; kn.sc.bufs[w] = buf),
//     so capacity survives across calls and growth reaches a steady state;
//   - every appended element is drawn from a sync.Pool
//     (t.slabs = append(t.slabs, spanSlabPool.Get().(*spanSlab)), the span
//     tracer's slab-table idiom): the elements are recycled process-wide
//     and the table itself is tiny and budget-bounded, so the growth is a
//     pointer-append into an amortized list, not a per-iteration leak.
//
// A function literal created at loop depth >= 1 allocates a closure object
// per iteration when it captures enclosing function variables and is not
// invoked on the spot. Hoist the closure out of the loop or pass the data
// as explicit parameters.
type HotEscape struct{}

func (*HotEscape) ID() string { return "hotescape" }

func (*HotEscape) Doc() string {
	return "no unbounded append growth or escaping loop closures inside parallel.Pool kernel callbacks or //hot:alloc-free functions"
}

func (r *HotEscape) Check(p *Pass) []Finding {
	var out []Finding
	for _, f := range p.Files {
		kernelCallbacks(p, f, func(_ *ast.CallExpr, lit *ast.FuncLit) {
			scope := enclosingDeclBody(f, lit.Pos())
			if scope == nil {
				scope = lit.Body
			}
			out = append(out, r.scanRegion(p, lit.Body, scope, "a parallel.Pool kernel callback")...)
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotMarked(fd.Doc) {
				continue
			}
			out = append(out, r.scanRegion(p, fd.Body, fd.Body, "the //hot:alloc-free function "+fd.Name.Name)...)
		}
	}
	return out
}

// scanRegion checks one hot body. escScope is the surrounding function body
// the amortization idioms are searched in: for a kernel callback the
// enclosing declaration, since the banked buffer is loaded before the
// closure and stored after it.
func (r *HotEscape) scanRegion(p *Pass, body, escScope *ast.BlockStmt, ctx string) []Finding {
	cfg := BuildCFG(body)
	amortized := amortizedTargets(p, escScope)
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				invoked[fl] = true
			}
		}
		return true
	})

	var out []Finding
	flag := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      p.Position(pos),
			Rule:     r.ID(),
			Severity: Error,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isBuiltinAppend(p, n) || cfg.LoopDepth(n.Pos()) < 1 {
				return true
			}
			dst := ast.Unparen(n.Args[0])
			if se, ok := dst.(*ast.SliceExpr); ok && isZeroHighSlice(p, se) {
				return true // append(x[:0], ...) reuses in place
			}
			if obj := referencedObj(p, dst); obj != nil && amortized[obj] {
				return true
			}
			if allPoolSourced(p, n) {
				return true // slab-table growth: elements recycle through a sync.Pool
			}
			flag(n.Pos(), "append to %s grows inside a loop in %s; pre-size with make(_, 0, n), reuse via a [:0] reslice, bank the buffer back to persistent storage, or draw elements from a sync.Pool", types.ExprString(n.Args[0]), ctx)
		case *ast.FuncLit:
			if n.Body == body || invoked[n] || cfg.LoopDepth(n.Pos()) < 1 {
				return true
			}
			caps := capturedVars(p, n, escScope)
			if len(caps) == 0 {
				return true // capture-free literals compile to a singleton
			}
			flag(n.Pos(), "closure created per loop iteration in %s captures %s and escapes; hoist it out of the loop or pass the data as parameters", ctx, strings.Join(caps, ", "))
		}
		return true
	})
	return out
}

// amortizedTargets collects the objects whose append growth is amortized:
// pre-sized makes, [:0] reslices, and buffers stored back to a persistent
// selector/index location.
func amortizedTargets(p *Pass, scope *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		if obj := referencedObj(p, e); obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				rhs = ast.Unparen(rhs)
				if isCapMake(p, rhs) {
					mark(n.Lhs[i])
				}
				if se, ok := rhs.(*ast.SliceExpr); ok && isZeroHighSlice(p, se) {
					mark(n.Lhs[i])
				}
				// kn.sc.bufs[w] = buf — the local is banked, its capacity
				// survives this call.
				if id, ok := rhs.(*ast.Ident); ok {
					switch ast.Unparen(n.Lhs[i]).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						mark(id)
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if i >= len(n.Names) {
					break
				}
				v = ast.Unparen(v)
				if isCapMake(p, v) {
					out[p.Info.Defs[n.Names[i]]] = true
				}
				if se, ok := v.(*ast.SliceExpr); ok && isZeroHighSlice(p, se) {
					out[p.Info.Defs[n.Names[i]]] = true
				}
			}
		}
		return true
	})
	return out
}

// capturedVars returns the sorted names of function-scoped variables the
// literal captures from its environment: used inside, declared outside the
// literal but inside the enclosing function (package-level references are
// direct, not captures).
func capturedVars(p *Pass, lit *ast.FuncLit, scope *ast.BlockStmt) []string {
	seen := map[types.Object]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if v.Pos() < scope.Pos() || v.Pos() >= scope.End() {
			return true // package-level or another function's state
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	sort.Strings(names)
	return names
}

// enclosingDeclBody finds the function declaration body containing pos.
func enclosingDeclBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && fd.Body.Pos() <= pos && pos < fd.Body.End() {
			return fd.Body
		}
	}
	return nil
}

// allPoolSourced reports whether every appended element of the append call
// is drawn from a sync.Pool — a (*sync.Pool).Get() result, optionally
// through a type assertion — the pooled-slab idiom
// (t.slabs = append(t.slabs, spanSlabPool.Get().(*spanSlab))). A spread
// append (append(a, b...)) never qualifies.
func allPoolSourced(p *Pass, call *ast.CallExpr) bool {
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	for _, arg := range call.Args[1:] {
		if !isPoolGet(p, arg) {
			return false
		}
	}
	return true
}

// isPoolGet reports whether e is a (*sync.Pool).Get() call, optionally
// wrapped in a type assertion.
func isPoolGet(p *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Get" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isCapMake reports whether e is a three-argument make: an explicit
// capacity, the pre-sizing idiom.
func isCapMake(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 3 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isZeroHighSlice reports whether se is a [:0]-style reslice (high bound
// constant zero): the buffer-reuse reset that keeps capacity.
func isZeroHighSlice(p *Pass, se *ast.SliceExpr) bool {
	if se.High == nil {
		return false
	}
	v := p.Info.Types[se.High].Value
	if v == nil {
		return false
	}
	z, ok := constant.Int64Val(v)
	return ok && z == 0
}
