package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the module-wide call graph the cross-procedural
// rules (walltime's transitive mode, determinism) are built on.
//
// Nodes are the functions and methods declared in the module. Edges are
// added for:
//
//   - direct calls to module functions and methods;
//   - calls through interface methods, expanded by class-hierarchy
//     analysis: an edge to every module type's implementation of the
//     called interface method;
//   - bare references to module functions (a function passed as a value
//     is assumed callable — conservative, which is the right direction
//     for "does this reach the wall clock" questions).
//
// Function literals are flattened into their enclosing declaration: a
// closure's calls are attributed to the function that defines it. Calls
// through plain function-typed variables are not resolved (no data-flow
// analysis), but because taking a function's value already adds an edge at
// the reference site, the common store-then-call pattern stays covered.
//
// Besides module edges, each node records its direct nondeterminism
// sources: wall-clock reads (the time functions in wallClockFuncs) and
// global pseudo-random/entropy reads (package-level math/rand, math/rand/v2
// and crypto/rand functions — methods on a seeded *rand.Rand are
// deterministic and are deliberately not recorded).

// CGNode is one declared function or method in the module.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pass *Pass
	// Calls holds the outgoing edges in source order.
	Calls []CGEdge
	// Wall holds the node's direct wall-clock and global-rand uses.
	Wall []WallUse
}

// CGEdge is one call (or function-value reference) site.
type CGEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

// WallUse is one direct use of a wall-clock or global randomness source.
type WallUse struct {
	Name string // rendered callee, e.g. "time.Now" or "math/rand.Int"
	Pos  token.Pos
}

// CallGraph is the module-wide call graph. Build once per Module via
// Module.CallGraph; checkers share the cached instance.
type CallGraph struct {
	mod   *Module
	nodes map[*types.Func]*CGNode
	// namedTypes lists the module's named (non-interface) types for CHA.
	namedTypes []types.Type
	// implCache memoizes CHA expansion per interface method.
	implCache map[*types.Func][]*types.Func
	// wallNext maps a function to the edge or use leading toward the
	// nearest reachable wall-clock/rand source (computed by reverse BFS).
	wallNext map[*types.Func]CGEdge
	wallUse  map[*types.Func]*WallUse
	// atomicParams maps module functions to which parameters they forward
	// into sync/atomic address arguments (lazily computed fixpoint).
	atomicParams map[*types.Func][]bool
}

// CallGraph returns the module's call graph, building it on first use.
func (m *Module) CallGraph() *CallGraph {
	if m.cg != nil {
		return m.cg
	}
	g := &CallGraph{
		mod:       m,
		nodes:     make(map[*types.Func]*CGNode),
		implCache: make(map[*types.Func][]*types.Func),
	}
	for _, p := range m.Pkgs {
		g.collectNamedTypes(p)
	}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &CGNode{Fn: fn, Decl: fd, Pass: p}
			}
		}
	}
	for _, n := range g.nodes {
		if n.Decl.Body != nil {
			g.scanBody(n)
		}
	}
	g.computeWallReach()
	m.cg = g
	return g
}

// Node returns the graph node for fn (normalized through Origin for
// instantiated generics), or nil for functions outside the module.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// collectNamedTypes gathers the package's named non-interface types, the
// candidate implementations for CHA.
func (g *CallGraph) collectNamedTypes(p *Pass) {
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		g.namedTypes = append(g.namedTypes, t)
	}
}

// scanBody records the node's call edges and wall uses. The whole body is
// inspected including nested function literals (closures are attributed to
// the enclosing declaration).
func (g *CallGraph) scanBody(n *CGNode) {
	p := n.Pass
	seen := make(map[edgeKey]bool)
	addEdge := func(callee *types.Func, pos token.Pos) {
		callee = callee.Origin()
		if _, inModule := g.nodes[callee]; !inModule {
			return
		}
		k := edgeKey{callee, pos}
		if seen[k] {
			return
		}
		seen[k] = true
		n.Calls = append(n.Calls, CGEdge{Callee: callee, Pos: pos})
	}
	// Selector identifiers are handled at their SelectorExpr (which has
	// the type information for interface dispatch); the set below keeps
	// the later bare-Ident visit from double-recording them.
	viaSelector := make(map[*ast.Ident]bool)
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		var id *ast.Ident
		var sel *ast.SelectorExpr
		switch e := node.(type) {
		case *ast.SelectorExpr:
			id, sel = e.Sel, e
			viaSelector[e.Sel] = true
		case *ast.Ident:
			if viaSelector[e] {
				return true
			}
			id = e
		default:
			return true
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if use, ok := wallSource(fn); ok {
			use.Pos = id.Pos()
			n.Wall = append(n.Wall, use)
			return true
		}
		if sel != nil && g.isInterfaceMethod(p, sel) {
			for _, impl := range g.implementations(fn, p) {
				addEdge(impl, id.Pos())
			}
			return true
		}
		addEdge(fn, id.Pos())
		return true
	})
}

type edgeKey struct {
	fn  *types.Func
	pos token.Pos
}

// isInterfaceMethod reports whether the selector resolves to a method
// called through an interface value.
func (g *CallGraph) isInterfaceMethod(p *Pass, sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	_, isIface := s.Recv().Underlying().(*types.Interface)
	return isIface
}

// implementations expands an interface method to the module methods that
// can stand behind it (class-hierarchy analysis over the module's named
// types).
func (g *CallGraph) implementations(m *types.Func, p *Pass) []*types.Func {
	m = m.Origin()
	if impls, ok := g.implCache[m]; ok {
		return impls
	}
	var impls []*types.Func
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		g.implCache[m] = nil
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if ok {
		for _, t := range g.namedTypes {
			pt := types.NewPointer(t)
			if !types.Implements(t, iface) && !types.Implements(pt, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(pt, true, m.Pkg(), m.Name())
			if impl, ok := obj.(*types.Func); ok {
				if _, inModule := g.nodes[impl.Origin()]; inModule {
					impls = append(impls, impl.Origin())
				}
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].FullName() < impls[j].FullName() })
	g.implCache[m] = impls
	return impls
}

// wallSource classifies a used function as a wall-clock or global-rand
// nondeterminism source.
func wallSource(fn *types.Func) (WallUse, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return WallUse{}, false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		// Methods are not sources: (*rand.Rand) with a fixed seed is
		// deterministic, and (time.Time)/(time.Duration) methods only
		// transform values already obtained.
		return WallUse{}, false
	}
	switch pkg.Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return WallUse{Name: "time." + fn.Name()}, true
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		// Package-level functions draw from the global (seeded-by-time or
		// OS-entropy) source. Constructors building local sources are
		// fine: what they return is only nondeterministic if seeded from
		// one of the sources flagged here anyway.
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return WallUse{}, false
		}
		return WallUse{Name: pkg.Path() + "." + fn.Name()}, true
	}
	return WallUse{}, false
}

// computeWallReach marks every node that can reach a wall-clock/rand use
// and records, per node, the next hop toward the nearest one (reverse BFS
// from the direct users, so path lengths are minimal and lookups are O(1)).
func (g *CallGraph) computeWallReach() {
	g.wallNext = make(map[*types.Func]CGEdge)
	g.wallUse = make(map[*types.Func]*WallUse)

	callers := make(map[*types.Func][]CGEdgeFrom)
	var frontier []*types.Func
	for fn, n := range g.nodes {
		for _, e := range n.Calls {
			callers[e.Callee] = append(callers[e.Callee], CGEdgeFrom{From: fn, Pos: e.Pos})
		}
		if len(n.Wall) > 0 {
			g.wallUse[fn] = &n.Wall[0]
			frontier = append(frontier, fn)
		}
	}
	for len(frontier) > 0 {
		fn := frontier[0]
		frontier = frontier[1:]
		for _, c := range callers[fn] {
			if _, done := g.wallUse[c.From]; done {
				continue
			}
			g.wallNext[c.From] = CGEdge{Callee: fn, Pos: c.Pos}
			g.wallUse[c.From] = g.wallUse[fn]
			frontier = append(frontier, c.From)
		}
	}
}

// CGEdgeFrom is a reversed edge used during reachability computation.
type CGEdgeFrom struct {
	From *types.Func
	Pos  token.Pos
}

// WallReach reports whether fn can reach a wall-clock/global-rand source,
// and if so returns the source plus the call path from fn to it, rendered
// as function names ("a → b → time.Now").
func (g *CallGraph) WallReach(fn *types.Func) (*WallUse, string) {
	fn = fn.Origin()
	use, ok := g.wallUse[fn]
	if !ok {
		return nil, ""
	}
	var hops []string
	for cur := fn; ; {
		hops = append(hops, cur.Name())
		next, ok := g.wallNext[cur]
		if !ok {
			break
		}
		cur = next.Callee
	}
	hops = append(hops, use.Name)
	return use, strings.Join(hops, " → ")
}

// CalleesOf resolves a call expression to the module functions it can
// invoke: the static callee, or every CHA implementation for a call
// through an interface method. Calls to non-module functions resolve to
// nil.
func (g *CallGraph) CalleesOf(p *Pass, call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			if _, inModule := g.nodes[fn.Origin()]; inModule {
				return []*types.Func{fn.Origin()}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := p.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if g.isInterfaceMethod(p, fun) {
			return g.implementations(fn, p)
		}
		if _, inModule := g.nodes[fn.Origin()]; inModule {
			return []*types.Func{fn.Origin()}
		}
	}
	return nil
}

// Reachable computes the set of functions reachable from the given roots,
// mapping each reached function to its BFS parent (roots map to nil).
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]*types.Func {
	parent := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range roots {
		r = r.Origin()
		if _, ok := g.nodes[r]; !ok {
			continue
		}
		if _, seen := parent[r]; seen {
			continue
		}
		parent[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.nodes[fn].Calls {
			if _, seen := parent[e.Callee]; seen {
				continue
			}
			parent[e.Callee] = fn
			queue = append(queue, e.Callee)
		}
	}
	return parent
}

// AtomicParams reports which parameters of fn are forwarded — directly or
// through further module wrappers — into sync/atomic address arguments.
// parallel.MinInt64(addr *int64, v int64) yields [true, false]: its callers
// access *addr atomically. Nil for functions outside the module or with no
// atomic forwarding.
func (g *CallGraph) AtomicParams(fn *types.Func) []bool {
	if g.atomicParams == nil {
		g.computeAtomicParams()
	}
	return g.atomicParams[fn.Origin()]
}

func (g *CallGraph) computeAtomicParams() {
	g.atomicParams = make(map[*types.Func][]bool)
	params := make(map[*types.Func][]types.Object)
	paramIndex := make(map[types.Object]int)
	for fn, n := range g.nodes {
		if n.Decl.Type.Params == nil {
			continue
		}
		var objs []types.Object
		for _, field := range n.Decl.Type.Params.List {
			for _, name := range field.Names {
				obj := n.Pass.Info.Defs[name]
				paramIndex[obj] = len(objs)
				objs = append(objs, obj)
			}
		}
		params[fn] = objs
	}
	// Fixpoint: a pass marks parameters forwarded into sync/atomic or into
	// an already-marked wrapper parameter; repeat until no new marks (the
	// chain length is bounded by wrapper nesting depth).
	for changed := true; changed; {
		changed = false
		for fn, n := range g.nodes {
			p := n.Pass
			ast.Inspect(n.Decl, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p, call)
				if callee == nil {
					return true
				}
				var idxs []int
				if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "sync/atomic" && isAtomicOpName(callee.Name()) {
					idxs = []int{0}
				} else {
					for i, on := range g.atomicParams[callee.Origin()] {
						if on {
							idxs = append(idxs, i)
						}
					}
				}
				for _, i := range idxs {
					if i >= len(call.Args) {
						continue
					}
					id, ok := ast.Unparen(call.Args[i]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Info.Uses[id]
					pi, isParam := paramIndex[obj]
					if !isParam {
						continue
					}
					// The parameter must belong to the enclosing function.
					own := params[fn]
					if pi >= len(own) || own[pi] != obj {
						continue
					}
					flags := g.atomicParams[fn]
					if flags == nil {
						flags = make([]bool, len(own))
						g.atomicParams[fn] = flags
					}
					if !flags[pi] {
						flags[pi] = true
						changed = true
					}
				}
				return true
			})
		}
	}
}

// PathFromRoot renders the call chain from a reachability root down to fn
// ("ReplayFlight → replaySelfTuning → Observe") using the parent map
// produced by Reachable.
func PathFromRoot(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var rev []string
	for cur := fn.Origin(); cur != nil; cur = parent[cur] {
		rev = append(rev, cur.Name())
		if parent[cur] == nil {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return strings.Join(rev, " → ")
}
