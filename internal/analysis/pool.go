package analysis

import (
	"go/ast"
	"go/types"
)

// poolKernelMethods are the parallel.Pool entry points whose function-literal
// arguments execute as kernel bodies on worker goroutines. Work done inside
// them is charged to the simulated machine by the calling solver, and the
// literals run concurrently with each other.
var poolKernelMethods = map[string]bool{
	"Run":           true,
	"For":           true,
	"Dynamic":       true,
	"DynamicWorker": true,
	"SumInt64":      true,
}

// kernelCallbacks walks a file and invokes visit for every function literal
// passed as an argument to a parallel.Pool kernel method. The recognition is
// type-based: the receiver must be a named type Pool (or *Pool) declared in
// a package named "parallel".
func kernelCallbacks(p *Pass, f *ast.File, visit func(call *ast.CallExpr, lit *ast.FuncLit)) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !poolKernelMethods[sel.Sel.Name] {
			return true
		}
		if !isPoolType(p.Info.Types[sel.X].Type) {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				visit(call, lit)
			}
		}
		return true
	})
}

// isPoolType reports whether t is parallel.Pool or *parallel.Pool.
func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Name() == "parallel"
}
