package analysis

import (
	"go/ast"
	"go/types"
)

// poolKernelMethods are the parallel.Pool entry points whose function-literal
// arguments execute as kernel bodies on worker goroutines. Work done inside
// them is charged to the simulated machine by the calling solver, and the
// literals run concurrently with each other.
var poolKernelMethods = map[string]bool{
	"Run":           true,
	"For":           true,
	"Dynamic":       true,
	"DynamicWorker": true,
	"SumInt64":      true,
}

// kernelCallbacks walks a file and invokes visit for every function literal
// that executes as a kernel body on worker goroutines: literals passed
// directly as arguments to a parallel.Pool kernel method, and literals
// assigned to a variable or struct field that is passed to such a method
// anywhere in the package. The latter form is how allocation-free kernels
// are written (the closure is built once, stored, and reused per
// invocation), so skipping it would exempt exactly the hottest callbacks.
// The recognition is type-based: the receiver must be a named type Pool
// (or *Pool) declared in a package named "parallel".
func kernelCallbacks(p *Pass, f *ast.File, visit func(call *ast.CallExpr, lit *ast.FuncLit)) {
	stored := storedKernelObjs(p)
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok || !poolKernelMethods[sel.Sel.Name] {
				return true
			}
			if !isPoolType(p.Info.Types[sel.X].Type) {
				return true
			}
			for _, arg := range st.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					visit(st, lit)
				}
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				lit, ok := st.Rhs[i].(*ast.FuncLit)
				if !ok {
					continue
				}
				if obj := referencedObj(p, lhs); obj != nil && stored[obj] {
					visit(nil, lit)
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i >= len(st.Values) {
					break
				}
				lit, ok := st.Values[i].(*ast.FuncLit)
				if !ok {
					continue
				}
				if obj := p.Info.Defs[name]; obj != nil && stored[obj] {
					visit(nil, lit)
				}
			}
		}
		return true
	})
}

// storedKernelObjs returns (computing once per Pass) the set of variables
// and fields that appear as non-literal callback arguments to Pool kernel
// methods anywhere in the package.
func storedKernelObjs(p *Pass) map[types.Object]bool {
	if p.storedKernel != nil {
		return p.storedKernel
	}
	stored := map[types.Object]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !poolKernelMethods[sel.Sel.Name] {
				return true
			}
			if !isPoolType(p.Info.Types[sel.X].Type) {
				return true
			}
			for _, arg := range call.Args {
				if _, isLit := arg.(*ast.FuncLit); isLit {
					continue
				}
				if obj := referencedObj(p, arg); obj != nil {
					stored[obj] = true
				}
			}
			return true
		})
	}
	p.storedKernel = stored
	return stored
}

// referencedObj resolves the variable or field an expression names:
// identifiers through Uses/Defs, field selectors through Selections.
func referencedObj(p *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Info.Defs[e]
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[e]; ok {
			return s.Obj()
		}
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// isPoolType reports whether t is parallel.Pool or *parallel.Pool.
func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Name() == "parallel"
}
