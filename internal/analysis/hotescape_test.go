package analysis

import (
	"strings"
	"testing"
)

func TestHotEscapeAppendGrowthInLoop(t *testing.T) {
	src := `package a

//hot:alloc-free
func gather(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // line 7: unbounded growth on the hot path
	}
	return out
}

//hot:alloc-free
func gatherPresized(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x) // pre-sized: amortized to zero
	}
	return out
}

//hot:alloc-free
func compact(xs []int) []int {
	keep := xs[:0]
	for _, x := range xs {
		if x > 0 {
			keep = append(keep, x) // [:0] reuse: in-place
		}
	}
	return keep
}

func cold(xs []int) []int { // unmarked: not the rule's business
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`
	p := singleFixture(t, src)
	fs := runRule(t, &HotEscape{}, p)
	expectLines(t, fs, 7)
	if !strings.Contains(fs[0].Message, "append to out") {
		t.Fatalf("message should name the growing slice: %s", fs[0].Message)
	}
}

func TestHotEscapeKernelBankedBufferAllowed(t *testing.T) {
	src := `package a

import "example.com/fix/internal/parallel"

type eng struct{ bufs [][]int }

func (e *eng) run(p *parallel.Pool, n int) {
	p.For(n, func(lo, hi int) {
		buf := e.bufs[0]
		for i := lo; i < hi; i++ {
			buf = append(buf, i) // banked back below: steady-state capacity
		}
		e.bufs[0] = buf
	})
	p.For(n, func(lo, hi int) {
		var buf []int
		for i := lo; i < hi; i++ {
			buf = append(buf, i) // line 18: fresh slice grows on every call
		}
		_ = buf
	})
}
`
	p := poolFixture(t, src)
	fs := runRule(t, &HotEscape{}, p)
	expectLines(t, fs, 18)
}

// The span tracer grows its slab table by appending slabs drawn from a
// process-wide sync.Pool (t.slabs = append(t.slabs, slabPool.Get().(*slab))):
// the elements recycle, so the growth is amortized and must not be flagged
// even inside a loop on the hot path. A plain append in the same loop, and a
// spread append of a pool-typed slice, stay flagged.
func TestHotEscapePooledSlabAllowed(t *testing.T) {
	src := `package a

import "sync"

type slab struct{ ev [8]int64 }

type tracer struct {
	slabs []*slab
	n     int
}

var slabPool sync.Pool

//hot:alloc-free
func (t *tracer) fill(spans int, extra []*slab) {
	var ids []int
	for i := 0; i < spans; i++ {
		if t.n >= len(t.slabs)*8 {
			t.slabs = append(t.slabs, slabPool.Get().(*slab)) // pooled: amortized
		}
		t.n++
		ids = append(ids, t.n)                // line 22: plain growth still flagged
		t.slabs = append(t.slabs, extra...)   // line 23: spread is not pool-sourced
	}
	_ = ids
}
`
	p := singleFixture(t, src)
	fs := runRule(t, &HotEscape{}, p)
	expectLines(t, fs, 22, 23)
}

// The lazy far queue's Push appends to a pair of parallel SoA slabs (vertex
// ids and recorded distances) selected by bucket index, banking both back to
// the queue — the structure-of-arrays variant of the banked-buffer idiom.
// Both slabs must be recognized as amortized; forgetting to bank one of the
// pair is exactly the regression the rule exists to catch.
func TestHotEscapeKernelSoASlabPair(t *testing.T) {
	src := `package a

import "example.com/fix/internal/parallel"

type lazyQ struct {
	vids  [][]int
	dists [][]int
}

func (q *lazyQ) drain(p *parallel.Pool, n int) {
	p.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := i % len(q.vids)
			vb, db := q.vids[s], q.dists[s]
			vb = append(vb, i)
			db = append(db, i*2)
			q.vids[s] = vb
			q.dists[s] = db
		}
	})
	p.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := i % len(q.vids)
			vb, db := q.vids[s], q.dists[s]
			vb = append(vb, i)
			db = append(db, i*2) // line 26: db never banked back
			q.vids[s] = vb
		}
	})
}
`
	p := poolFixture(t, src)
	fs := runRule(t, &HotEscape{}, p)
	expectLines(t, fs, 26)
	if !strings.Contains(fs[0].Message, "append to db") {
		t.Fatalf("message should name the unbanked slab: %s", fs[0].Message)
	}
}

func TestHotEscapeLoopClosureCapture(t *testing.T) {
	src := `package a

//hot:alloc-free
func handlers(xs []int) []func() int {
	out := make([]func() int, 0, len(xs))
	for _, x := range xs {
		x := x
		out = append(out, func() int { return x }) // line 8: escaping capture
	}
	return out
}

//hot:alloc-free
func inline(xs []int) int {
	s := 0
	for _, x := range xs {
		s += func() int { return x }() // invoked on the spot: no closure object
	}
	return s
}
`
	p := singleFixture(t, src)
	fs := runRule(t, &HotEscape{}, p)
	expectLines(t, fs, 8)
	if !strings.Contains(fs[0].Message, "captures x") {
		t.Fatalf("message should name the captured variable: %s", fs[0].Message)
	}
}

func TestHotEscapeIgnoreDirective(t *testing.T) {
	src := `package a

//hot:alloc-free
func slowInit(xs []int) []int {
	var out []int
	for _, x := range xs {
		//lint:ignore hotescape one-time setup, measured alloc-free in steady state
		out = append(out, x)
	}
	return out
}
`
	p := singleFixture(t, src)
	expectLines(t, runRule(t, &HotEscape{}, p))
}
