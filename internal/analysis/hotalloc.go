package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation-prone constructs inside parallel.Pool kernel
// callbacks and inside functions carrying the //hot:alloc-free marker.
// Kernels run once per solver iteration on every worker and are covered by
// testing.AllocsPerRun gates; the constructs below defeat those gates in
// ways that are easy to miss in review:
//
//   - fmt.* calls box every vararg into an interface and usually build a
//     string (even fmt.Errorf on a path "never taken" allocates its frame);
//   - string concatenation with non-constant operands allocates the result;
//   - explicit conversion of a concrete value to an interface type boxes it.
//     Pointer-shaped operands (pointers, channels, maps, funcs) are exempt:
//     their interface representation is the word itself, so converting them
//     never heap-allocates — this is what makes sync.Pool slab recycling
//     (spanSlabPool.Put(slab), slab a *spanSlab) free on the hot path.
//
// Formatting and diagnostics belong at the solver level, outside the
// kernels; counters (internal/obs) are the allocation-free way to get data
// out of a kernel body.
//
// The //hot:alloc-free marker (a whole doc-comment line, like a //go:
// directive) declares a named function part of a solver's per-iteration hot
// path — the flight recorder's Append, the controller's model checkpoint —
// and subjects its body to the same checks as a kernel callback.
type HotAlloc struct{}

func (*HotAlloc) ID() string { return "hotalloc" }

func (*HotAlloc) Doc() string {
	return "no fmt calls, string concatenation, or interface boxing inside parallel.Pool kernel callbacks or //hot:alloc-free functions"
}

func (r *HotAlloc) Check(p *Pass) []Finding {
	var out []Finding
	flag := func(pos token.Pos, msg string) {
		out = append(out, Finding{
			Pos:      p.Position(pos),
			Rule:     r.ID(),
			Severity: Error,
			Message:  msg,
		})
	}
	scan := func(body *ast.BlockStmt, ctx string) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				if name, ok := fmtCall(p, st); ok {
					flag(st.Pos(), "fmt."+name+" inside "+ctx+" allocates; format at the solver level or record an obs counter")
					return true
				}
				if to, ok := interfaceConversion(p, st); ok {
					flag(st.Pos(), "conversion to interface type "+to+" inside "+ctx+" boxes its operand")
				}
			case *ast.BinaryExpr:
				if st.Op == token.ADD && isNonConstString(p, st) {
					flag(st.Pos(), "string concatenation inside "+ctx+" allocates; build strings at the solver level")
					return false // one finding per concatenation chain
				}
			case *ast.AssignStmt:
				if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 && isStringType(p.Info.Types[st.Lhs[0]].Type) {
					flag(st.Pos(), "string += inside "+ctx+" allocates; build strings at the solver level")
				}
			}
			return true
		})
	}
	for _, f := range p.Files {
		kernelCallbacks(p, f, func(_ *ast.CallExpr, lit *ast.FuncLit) {
			scan(lit.Body, "a parallel.Pool kernel callback")
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotMarked(fd.Doc) {
				continue
			}
			scan(fd.Body, "the //hot:alloc-free function "+fd.Name.Name)
		}
	}
	return out
}

// hotMarked reports whether the doc comment contains the //hot:alloc-free
// marker line.
func hotMarked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//hot:alloc-free" {
			return true
		}
	}
	return false
}

// fmtCall reports whether the call targets a function in package fmt.
func fmtCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return "", false
	}
	return obj.Name(), true
}

// interfaceConversion reports whether the call is an explicit conversion
// T(x) where T is an interface type and x is not already an interface.
func interfaceConversion(p *Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", false
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); !isIface {
		return "", false
	}
	argT := p.Info.Types[call.Args[0]].Type
	if argT == nil {
		return "", false
	}
	if _, already := argT.Underlying().(*types.Interface); already {
		return "", false
	}
	if pointerShaped(argT) {
		return "", false // the iface data word holds the value directly: no boxing allocation
	}
	return types.TypeString(tv.Type, types.RelativeTo(p.Pkg)), true
}

// pointerShaped reports whether values of t are represented as a single
// pointer word, so converting them to an interface stores the word in the
// iface directly instead of heap-allocating a copy.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// isNonConstString reports whether e is a string-typed expression whose
// value is not known at compile time (constant concatenations fold away and
// never allocate).
func isNonConstString(p *Pass, e *ast.BinaryExpr) bool {
	tv := p.Info.Types[e]
	return isStringType(tv.Type) && tv.Value == nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
