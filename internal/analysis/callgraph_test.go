package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// fnByName finds a declared function node by bare name in the module call
// graph.
func fnByName(t *testing.T, g *CallGraph, name string) *types.Func {
	t.Helper()
	var found *types.Func
	for fn := range g.nodes {
		if fn.Name() == name {
			if found != nil {
				t.Fatalf("ambiguous function name %q in fixture", name)
			}
			found = fn
		}
	}
	if found == nil {
		t.Fatalf("function %q not in call graph", name)
	}
	return found
}

func TestCallGraphDirectAndTransitiveWall(t *testing.T) {
	p := singleFixture(t, `package a

import "time"

func leaf() time.Time { return time.Now() }

func mid() time.Time { return leaf() }

func top() time.Time { return mid() }

func clean(x int) int { return x + 1 }
`)
	g := p.Mod.CallGraph()

	use, path := g.WallReach(fnByName(t, g, "top"))
	if use == nil {
		t.Fatal("top must reach time.Now transitively")
	}
	if use.Name != "time.Now" {
		t.Fatalf("wall source = %q, want time.Now", use.Name)
	}
	if want := "top → mid → leaf → time.Now"; path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}
	if use, _ := g.WallReach(fnByName(t, g, "clean")); use != nil {
		t.Fatalf("clean must not reach the wall clock, got %v", use)
	}
}

func TestCallGraphGlobalRandButNotSeededRand(t *testing.T) {
	p := singleFixture(t, `package a

import "math/rand"

func global() int { return rand.Int() }

func seeded(r *rand.Rand) int { return r.Int() }

func construct() *rand.Rand { return rand.New(rand.NewSource(42)) }
`)
	g := p.Mod.CallGraph()
	if use, _ := g.WallReach(fnByName(t, g, "global")); use == nil || use.Name != "math/rand.Int" {
		t.Fatalf("global rand use = %v, want math/rand.Int", use)
	}
	if use, _ := g.WallReach(fnByName(t, g, "seeded")); use != nil {
		t.Fatalf("seeded *rand.Rand method flagged as nondeterministic: %v", use)
	}
	if use, _ := g.WallReach(fnByName(t, g, "construct")); use != nil {
		t.Fatalf("rand.New/NewSource constructors flagged: %v", use)
	}
}

func TestCallGraphInterfaceDispatchCHA(t *testing.T) {
	p := singleFixture(t, `package a

import "time"

type policy interface{ decide() float64 }

type clockPolicy struct{}

func (clockPolicy) decide() float64 { return float64(time.Now().Unix()) }

type purePolicy struct{}

func (purePolicy) decide() float64 { return 1.0 }

func drive(p policy) float64 { return p.decide() }
`)
	g := p.Mod.CallGraph()
	use, path := g.WallReach(fnByName(t, g, "drive"))
	if use == nil {
		t.Fatal("interface call must expand to implementations (CHA), reaching time.Now via clockPolicy")
	}
	if !strings.Contains(path, "decide") {
		t.Fatalf("path %q should route through a decide implementation", path)
	}
}

func TestCallGraphFunctionValueReference(t *testing.T) {
	p := singleFixture(t, `package a

import "time"

func stamp() int64 { return time.Now().Unix() }

func install() func() int64 {
	f := stamp // reference, not a call: still an edge (conservative)
	return f
}
`)
	g := p.Mod.CallGraph()
	if use, _ := g.WallReach(fnByName(t, g, "install")); use == nil {
		t.Fatal("taking a wall-clock function's value must count as reaching it")
	}
}

func TestCallGraphReachableAndPath(t *testing.T) {
	p := singleFixture(t, `package a

func root() { a() }
func a()    { b() }
func b()    {}
func other() {}
`)
	g := p.Mod.CallGraph()
	parent := g.Reachable([]*types.Func{fnByName(t, g, "root")})
	for _, name := range []string{"root", "a", "b"} {
		if _, ok := parent[fnByName(t, g, name)]; !ok {
			t.Fatalf("%s must be reachable from root", name)
		}
	}
	if _, ok := parent[fnByName(t, g, "other")]; ok {
		t.Fatal("other must not be reachable from root")
	}
	if got, want := PathFromRoot(parent, fnByName(t, g, "b")), "root → a → b"; got != want {
		t.Fatalf("path = %q, want %q", got, want)
	}
}

func TestCallGraphGenericsNormalizeToOrigin(t *testing.T) {
	p := singleFixture(t, `package a

import "time"

func tick[T any](v T) T {
	_ = time.Now()
	return v
}

func use() int { return tick(1) }
`)
	g := p.Mod.CallGraph()
	if use, _ := g.WallReach(fnByName(t, g, "use")); use == nil {
		t.Fatal("instantiated generic call must resolve to its origin's wall use")
	}
}
