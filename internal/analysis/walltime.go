package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// WallTime flags wall-clock reads inside parallel.Pool kernel callbacks.
// Kernel cost is charged to the simulated machine (internal/sim) from the
// work-item counts the solver reports; reading the host clock inside a
// kernel body either leaks nondeterministic wall time into simulated
// results or signals that a solver is timing the wrong layer. Wall-clock
// measurement belongs at the solver entry point, outside the kernels.
//
// The check is transitive over the module call graph: a kernel that calls a
// module helper which reaches time.Now three frames down is as wrong as one
// calling it directly, and the finding spells out the chain
// (helper → record → time.Now) so the report is actionable without a
// manual dig.
type WallTime struct{}

// wallClockFuncs are the package time functions that observe or depend on
// the host clock.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (*WallTime) ID() string { return "walltime" }

func (*WallTime) Doc() string {
	return "no direct or transitive time.Now/wall-clock reads inside sim-charged parallel.Pool kernel callbacks"
}

func (r *WallTime) Check(p *Pass) []Finding {
	var out []Finding
	var g *CallGraph
	if p.Mod != nil {
		g = p.Mod.CallGraph()
	}
	for _, f := range p.Files {
		kernelCallbacks(p, f, func(_ *ast.CallExpr, lit *ast.FuncLit) {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if ok && obj.Pkg() != nil && obj.Pkg().Path() == "time" && wallClockFuncs[obj.Name()] {
						out = append(out, Finding{
							Pos:      p.Position(call.Pos()),
							Rule:     r.ID(),
							Severity: Error,
							Message: fmt.Sprintf("time.%s inside a parallel.Pool kernel callback; kernel cost is simulated — measure wall time at the solver level",
								obj.Name()),
						})
						return true
					}
				}
				// Transitive: a module callee that reaches a wall-clock or
				// global rand source somewhere down its call chain.
				if g == nil {
					return true
				}
				for _, callee := range g.CalleesOf(p, call) {
					use, path := g.WallReach(callee)
					if use == nil {
						continue
					}
					out = append(out, Finding{
						Pos:      p.Position(call.Pos()),
						Rule:     r.ID(),
						Severity: Error,
						Message: fmt.Sprintf("call inside a parallel.Pool kernel callback reaches %s (%s); kernel cost is simulated — measure wall time at the solver level",
							use.Name, path),
					})
					break
				}
				return true
			})
		})
	}
	return out
}
