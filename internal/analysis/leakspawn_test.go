package analysis

import "testing"

func TestLeakSpawnUnguardedSpawn(t *testing.T) {
	src := `package a

func launch(f func()) {
	go f() // line 4: nothing bounds this goroutine
}

func launchClosure(f func()) {
	go func() { f() }() // line 8: closure with no join either
}
`
	p := singleFixture(t, src)
	fs := runRule(t, &LeakSpawn{}, p)
	expectLines(t, fs, 4, 8)
}

func TestLeakSpawnWaitGroupAndSemaphoreGuards(t *testing.T) {
	src := `package a

import "sync"

func joined(fs []func()) {
	var wg sync.WaitGroup
	for _, f := range fs {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

func bounded(fs []func()) {
	sem := make(chan struct{}, 4)
	for _, f := range fs {
		sem <- struct{}{}
		go func(f func()) {
			defer func() { <-sem }()
			f()
		}(f)
	}
}
`
	p := singleFixture(t, src)
	expectLines(t, runRule(t, &LeakSpawn{}, p))
}

func TestLeakSpawnBlockingChannelOps(t *testing.T) {
	src := `package a

func pump(ch chan int) {
	ch <- 1 // line 4: unbuffered send, nothing closes chan int here
}

func wait(ch chan int) int {
	return <-ch // line 8: blocking receive, no escape
}

func forever(ch chan int) int {
	s := 0
	for v := range ch { // line 13: ranged channel never closed
		s += v
	}
	return s
}
`
	p := singleFixture(t, src)
	fs := runRule(t, &LeakSpawn{}, p)
	expectLines(t, fs, 4, 8, 13)
}

func TestLeakSpawnEscapes(t *testing.T) {
	src := `package a

import "time"

func buffered() {
	done := make(chan error, 1)
	done <- nil // buffered: the send cannot park
	_ = <-done
}

func trySend(ch chan int) bool {
	select {
	case ch <- 1: // default case: never blocks
		return true
	default:
		return false
	}
}

func waitCancel(ch chan int) int {
	select {
	case v := <-ch: // time.After provides the unblock path
		return v
	case <-time.After(time.Second):
		return 0
	}
}

func emit(ch chan int, n int) {
	for i := 0; i < n; i++ {
		ch <- i // close below: managed lifecycle
	}
	close(ch)
}

func sum(ch chan int) int {
	s := 0
	for v := range ch { // emit closes a chan int: termination exists
		s += v
	}
	return s
}
`
	p := singleFixture(t, src)
	expectLines(t, runRule(t, &LeakSpawn{}, p))
}

func TestLeakSpawnIgnoreDirective(t *testing.T) {
	src := `package a

func serve(loop func()) {
	//lint:ignore leakspawn one-off server goroutine, joined in Close
	go loop()
}
`
	p := singleFixture(t, src)
	expectLines(t, runRule(t, &LeakSpawn{}, p))
}
