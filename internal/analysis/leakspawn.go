package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// LeakSpawn flags the two goroutine-leak shapes that matter for a
// long-running solver process: unbounded spawns and channel operations with
// no way to unblock.
//
// A `go` statement is considered bounded when the spawn participates in one
// of the lifecycle idioms the repo uses (internal/parallel worker pool,
// internal/sssp batch semaphore):
//
//   - the spawned function body calls (*sync.WaitGroup).Done — the spawner
//     owns a join point;
//   - the spawned body acquires/releases a struct{}-element channel (a
//     counting semaphore token);
//   - a wg.Add call or a send on a struct{}-element channel sits on a CFG
//     path reaching the spawn (acquire-before-spawn, the shape that keeps
//     at most `width` goroutines alive in sssp.Batch).
//
// A blocking channel send/receive (or a range over a channel) is fine when
// an escape hatch exists: the channel is made with a non-zero buffer, it is
// part of a select with a default or a cancellation/timeout case (a
// call-derived channel such as time.After(...) or ctx.Done()), the receive
// sits in a defer (semaphore release), or a channel of the same type is
// closed somewhere in the package (managed shutdown — this matches the
// worker pool, where Close ranges over p.jobs closing each element).
// Intentional one-off goroutines (signal handlers, server loops joined at
// Close) carry //lint:ignore leakspawn directives stating the lifecycle
// argument.
type LeakSpawn struct{}

func (*LeakSpawn) ID() string { return "leakspawn" }

func (*LeakSpawn) Doc() string {
	return "goroutine spawns must be bounded (WaitGroup/semaphore/pool) and channel ops must have an unblock path (buffer, close, select escape)"
}

// leakEnv is the package-wide context the per-function checks consult.
type leakEnv struct {
	buffered    map[types.Object]bool // channels made with a non-zero capacity
	closedObjs  map[types.Object]bool // channels passed to close()
	closedTypes map[string]bool       // type strings of closed channels
	skip        map[ast.Node]bool     // ops excused by select/defer context
}

func (r *LeakSpawn) Check(p *Pass) []Finding {
	env := buildLeakEnv(p)
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				r.walkBody(p, env, fd.Body, &out)
			}
		}
	}
	return out
}

// walkBody checks one function body, recursing into function literals so
// each go statement is judged against the CFG of its innermost enclosing
// function (guards in an outer function do not bound a spawn in a closure).
func (r *LeakSpawn) walkBody(p *Pass, env *leakEnv, body *ast.BlockStmt, out *[]Finding) {
	var cfg *CFG // built on the first spawn in this body
	flag := func(n ast.Node, format string, args ...any) {
		*out = append(*out, Finding{
			Pos:      p.Position(n.Pos()),
			Rule:     r.ID(),
			Severity: Error,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body { // the top-level Inspect node is body itself
				r.walkBody(p, env, n.Body, out)
				return false
			}
		case *ast.GoStmt:
			if cfg == nil {
				cfg = BuildCFG(body)
			}
			if !spawnGuarded(p, env, cfg, n) {
				flag(n, "unguarded goroutine spawn: no WaitGroup.Done in the body and no wg.Add/semaphore acquire on a path reaching the spawn; bound it or lint:ignore with the lifecycle argument")
			}
			// Descend: the spawned body's own channel ops are still checked
			// (the FuncLit case above re-enters walkBody for them).
		case *ast.SendStmt:
			if !env.skip[n] && !chanEscapes(p, env, n.Chan, false) {
				flag(n, "blocking send on unbuffered channel %s with no close or select escape: a missing receiver parks this goroutine forever", types.ExprString(n.Chan))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !env.skip[n] && !chanEscapes(p, env, n.X, true) {
				flag(n, "blocking receive on channel %s with no buffer, close, or select escape", types.ExprString(n.X))
			}
		case *ast.RangeStmt:
			t := p.Info.Types[n.X].Type
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); isChan && !closeReaches(p, env, n.X) {
				flag(n.X, "range over channel %s that is never closed in this package: the loop cannot terminate", types.ExprString(n.X))
			}
		}
		return true
	})
}

// buildLeakEnv scans the package once for buffered makes, close sites, and
// the select/defer contexts that excuse blocking operations.
func buildLeakEnv(p *Pass) *leakEnv {
	env := &leakEnv{
		buffered:    map[types.Object]bool{},
		closedObjs:  map[types.Object]bool{},
		closedTypes: map[string]bool{},
		skip:        map[ast.Node]bool{},
	}
	markOps := func(root ast.Node, sends bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					env.skip[n] = true
				}
			case *ast.SendStmt:
				if sends {
					env.skip[n] = true
				}
			}
			return true
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
						if obj := referencedObj(p, n.Args[0]); obj != nil {
							env.closedObjs[obj] = true
						}
						if t := p.Info.Types[n.Args[0]].Type; t != nil {
							env.closedTypes[types.TypeString(t, nil)] = true
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if isBufferedMake(p, rhs) {
							if obj := referencedObj(p, n.Lhs[i]); obj != nil {
								env.buffered[obj] = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i < len(n.Names) && isBufferedMake(p, v) {
						env.buffered[p.Info.Defs[n.Names[i]]] = true
					}
				}
			case *ast.KeyValueExpr:
				// serveErr: make(chan error, 1) inside a struct literal.
				if key, ok := n.Key.(*ast.Ident); ok && isBufferedMake(p, n.Value) {
					if obj := p.Info.Uses[key]; obj != nil {
						env.buffered[obj] = true
					}
				}
			case *ast.SelectStmt:
				comms := 0
				escape := false
				for _, cl := range n.Body.List {
					cc, ok := cl.(*ast.CommClause)
					if !ok {
						continue
					}
					if cc.Comm == nil {
						escape = true // default case: the select never blocks
						continue
					}
					comms++
					if commIsCancellation(cc.Comm) {
						escape = true // time.After(...), ctx.Done(), timer.C via call
					}
				}
				if escape || comms >= 2 {
					for _, cl := range n.Body.List {
						if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
							markOps(cc.Comm, true)
						}
					}
				}
			case *ast.DeferStmt:
				// defer func() { <-sem }() — the release half of the
				// semaphore idiom runs at function exit, it is not a leak.
				markOps(n, false)
			}
			return true
		})
	}
	return env
}

// commIsCancellation reports whether a select communication receives from a
// call-derived channel (time.After(d), ctx.Done(), timer/ticker accessors):
// the runtime-provided unblock path that excuses the select's other cases.
func commIsCancellation(comm ast.Stmt) bool {
	found := false
	ast.Inspect(comm, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			if _, isCall := ast.Unparen(u.X).(*ast.CallExpr); isCall {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBufferedMake reports whether e is make(chan T, n) with n not constantly
// zero. A non-constant capacity (make(chan struct{}, width)) counts as
// buffered: the semaphore width is a runtime decision, not a blocking bug.
func isBufferedMake(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	t := p.Info.Types[call].Type
	if t == nil {
		return false
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return false
	}
	if v := p.Info.Types[call.Args[1]].Value; v != nil {
		if z, ok := constant.Int64Val(v); ok && z == 0 {
			return false
		}
	}
	return true
}

// chanEscapes reports whether a blocking op on channel expression ch has an
// unblock path: a buffered make bound to the same object, or a close of the
// same object (receives only — sending on a closed channel panics) or of a
// channel of the same type anywhere in the package.
func chanEscapes(p *Pass, env *leakEnv, ch ast.Expr, isRecv bool) bool {
	obj := chanObj(p, ch)
	if obj != nil && env.buffered[obj] {
		return true
	}
	if isRecv && obj != nil && env.closedObjs[obj] {
		return true
	}
	if t := p.Info.Types[ch].Type; t != nil && env.closedTypes[types.TypeString(t, nil)] {
		return true
	}
	return false
}

// closeReaches reports whether the ranged-over channel has a close in the
// package, by object identity or by type (the pool's Close ranges over
// p.jobs closing each element — a different object than the worker's bound
// parameter, but the same channel type).
func closeReaches(p *Pass, env *leakEnv, ch ast.Expr) bool {
	if obj := chanObj(p, ch); obj != nil && env.closedObjs[obj] {
		return true
	}
	t := p.Info.Types[ch].Type
	return t != nil && env.closedTypes[types.TypeString(t, nil)]
}

// chanObj resolves a channel expression to the variable or field behind it.
func chanObj(p *Pass, ch ast.Expr) types.Object {
	e := ast.Unparen(ch)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X) // p.jobs[w]: track the backing container
	}
	return referencedObj(p, e)
}

// spawnGuarded reports whether the go statement participates in a bounded
// lifecycle idiom (see the type doc for the accepted shapes).
func spawnGuarded(p *Pass, env *leakEnv, cfg *CFG, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok && spawnedBodyGuarded(p, lit.Body) {
		return true
	}
	sb := cfg.BlockFor(g.Pos())
	if sb == nil {
		return false
	}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if !isSpawnGuardStmt(p, n) {
				continue
			}
			if b == sb {
				if n.Pos() < g.Pos() {
					return true
				}
				continue
			}
			if cfg.Reaches(b, sb) {
				return true
			}
		}
	}
	return false
}

// spawnedBodyGuarded reports whether the spawned closure joins a WaitGroup
// or handles a semaphore token itself.
func spawnedBodyGuarded(p *Pass, body *ast.BlockStmt) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupCall(p, n, "Done") {
				guarded = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isSemaphoreChan(p, n.X) {
				guarded = true
			}
		case *ast.SendStmt:
			if isSemaphoreChan(p, n.Chan) {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// isSpawnGuardStmt matches the acquire-before-spawn statements: wg.Add(...)
// or a send of a token into a struct{}-element channel.
func isSpawnGuardStmt(p *Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, ok := n.X.(*ast.CallExpr)
		return ok && isWaitGroupCall(p, call, "Add")
	case *ast.SendStmt:
		return isSemaphoreChan(p, n.Chan)
	}
	return false
}

// isWaitGroupCall reports whether call invokes the named sync.WaitGroup
// method.
func isWaitGroupCall(p *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "(*sync.WaitGroup)."+name
}

// isSemaphoreChan reports whether e is a channel with struct{} elements —
// the token type of a counting semaphore.
func isSemaphoreChan(p *Pass, e ast.Expr) bool {
	t := p.Info.Types[e].Type
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
