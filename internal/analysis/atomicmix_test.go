package analysis

import (
	"strings"
	"testing"
)

func TestAtomicMixDirectFieldMix(t *testing.T) {
	src := `package a

import "sync/atomic"

type counter struct{ n int64 }

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 { return c.n } // line 9: plain read of atomic field

func pure() int64 { var x int64; x++; return x }
`
	p := singleFixture(t, src)
	fs := runRule(t, &AtomicMix{}, p)
	expectLines(t, fs, 9)
	if !strings.Contains(fs[0].Message, "n is accessed atomically") {
		t.Fatalf("message should name the mixed location: %s", fs[0].Message)
	}
}

func TestAtomicMixElementViaWrapperChain(t *testing.T) {
	// par.Relax forwards addr into MinInt64 which forwards it into
	// sync/atomic: the fixpoint must mark both wrappers so &s.dist[v] at the
	// call site counts as an element-wise atomic access.
	wrapper := map[string]string{"par.go": `package par

import "sync/atomic"

func MinInt64(addr *int64, v int64) {
	for {
		old := atomic.LoadInt64(addr)
		if v >= old || atomic.CompareAndSwapInt64(addr, old, v) {
			return
		}
	}
}

func Relax(addr *int64, v int64) { MinInt64(addr, v) }
`}
	src := `package a

import "example.com/fix/par"

type state struct{ dist []int64 }

func (s *state) relax(v int, d int64) {
	par.Relax(&s.dist[v], d)
}

func (s *state) scan() int64 { // one finding per function, at the first use
	best := s.dist[0] // line 12: plain element read of atomically-updated slice
	for _, d := range s.dist {
		if d < best {
			best = d
		}
	}
	return best
}

func (s *state) size() int { return len(s.dist) } // len does not touch elements

func (s *state) indices() []int {
	var out []int
	for i := range s.dist { // index-only range: no element access
		out = append(out, i)
	}
	return out
}
`
	path := fixtureMod + "/a"
	p := checkFixture(t, map[string]map[string]string{
		fixtureMod + "/par": wrapper,
		path:                {"a.go": src},
	}, path)
	fs := runRule(t, &AtomicMix{}, p)
	expectLines(t, fs, 12)
}

func TestAtomicMixDisjointAccessPatternsAllowed(t *testing.T) {
	src := `package a

import "sync/atomic"

var hits int64
var misses int64

func bump() { atomic.AddInt64(&hits, 1) }

func countMisses() { misses++ } // plain-only variable: fine

func snapshot() int64 { return atomic.LoadInt64(&hits) }
`
	p := singleFixture(t, src)
	expectLines(t, runRule(t, &AtomicMix{}, p))
}

func TestAtomicMixIgnoreDirective(t *testing.T) {
	src := `package a

import "sync/atomic"

var phase int64

func worker() { atomic.AddInt64(&phase, 1) }

func reset() {
	//lint:ignore atomicmix workers are joined before reset runs
	phase = 0
}

func peek() int64 { return phase } // line 14: unsuppressed mix still fires
`
	p := singleFixture(t, src)
	fs := runRule(t, &AtomicMix{}, p)
	expectLines(t, fs, 14)
}
