package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix flags variables and fields that are accessed both through
// sync/atomic operations and through plain loads/stores in the same
// package. Mixing the two is the exact bug class behind atomic-min races:
// the atomic CAS path promises other goroutines a consistent view, and a
// single plain store (or read) on the same location re-introduces the data
// race the atomics were bought to eliminate. The race detector only sees
// the interleavings a test happens to drive; this rule rejects the pattern
// statically.
//
// Atomic accesses are recognized at two levels:
//
//   - direct sync/atomic calls: atomic.LoadInt64(&x), atomic.AddInt32(&s.f, 1), …
//   - calls to module wrappers that forward a pointer parameter into
//     sync/atomic (possibly through further wrappers): parallel.MinInt64(
//     &dist[v], d) marks dist element accesses atomic at the call site.
//     Wrapper detection is a fixpoint over the module call graph.
//
// Element-wise atomics (&x[i]) are matched against plain element accesses
// (x[j] loads/stores, `for _, v := range x`); whole-variable atomics (&x)
// are matched against any plain value use of x. Sequential-phase accesses
// that are intentionally plain (initialization before workers start, reads
// after a barrier) are suppressed with a //lint:ignore atomicmix directive
// stating that reasoning.
type AtomicMix struct{}

func (*AtomicMix) ID() string { return "atomicmix" }

func (*AtomicMix) Doc() string {
	return "no mixing of sync/atomic and plain loads/stores on the same variable or field within a package"
}

// atomicSite records how a location is accessed atomically.
type atomicSite struct {
	pos  token.Position
	elem bool // accessed element-wise through &x[i]
}

func (r *AtomicMix) Check(p *Pass) []Finding {
	atomics := make(map[types.Object]*atomicSite)
	consumed := make(map[*ast.Ident]bool)

	record := func(arg ast.Expr) {
		base, elem, ident := atomicBase(p, arg)
		if base == nil {
			return
		}
		consumed[ident] = true
		if s := atomics[base]; s == nil {
			atomics[base] = &atomicSite{pos: p.Position(arg.Pos()), elem: elem}
		} else if s.elem && !elem {
			s.elem = false // whole-variable atomic subsumes element-wise
		}
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, idx := range atomicArgIndices(p, n) {
					if idx < len(n.Args) {
						record(n.Args[idx])
					}
				}
			case *ast.UnaryExpr:
				// Any address-of is excluded from the plain-access scan:
				// &b.words[w] bound to a local for atomic.CompareAndSwap is
				// not a load or store — the access happens through the
				// pointer, at the atomic call.
				if n.Op == token.AND {
					if _, _, ident := atomicBase(p, n); ident != nil {
						consumed[ident] = true
					}
				}
			}
			return true
		})
	}
	if len(atomics) == 0 {
		return nil
	}

	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if site := r.firstPlainUse(p, fd, atomics, consumed); site != nil {
				out = append(out, *site)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Line < out[j].Pos.Line })
	return out
}

// firstPlainUse returns a finding for the first non-atomic access of an
// atomically-accessed object inside fd (one finding per function keeps a
// hot loop from producing dozens of identical reports).
func (r *AtomicMix) firstPlainUse(p *Pass, fd *ast.FuncDecl, atomics map[types.Object]*atomicSite, consumed map[*ast.Ident]bool) *Finding {
	var found *Finding
	flag := func(pos token.Pos, obj types.Object, s *atomicSite) {
		if found != nil && p.Position(pos).Line >= found.Pos.Line {
			return
		}
		found = &Finding{
			Pos:      p.Position(pos),
			Rule:     r.ID(),
			Severity: Error,
			Message: fmt.Sprintf("%s is accessed atomically (e.g. %s:%d) but plainly here; use the atomic helpers on every access or lint:ignore with the happens-before argument",
				obj.Name(), shortFile(s.pos.Filename), s.pos.Line),
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			base := referencedObj(p, e.X)
			if base == nil {
				return true
			}
			if s, ok := atomics[base]; ok && s.elem && !insideAtomicArg(p, e, consumed) {
				flag(e.Pos(), base, s)
			}
		case *ast.RangeStmt:
			base := referencedObj(p, e.X)
			if base == nil {
				return true
			}
			if s, ok := atomics[base]; ok && s.elem && e.Value != nil {
				flag(e.X.Pos(), base, s)
			}
		case *ast.Ident:
			if consumed[e] {
				return true
			}
			obj := p.Info.Uses[e]
			if obj == nil {
				return true
			}
			if s, ok := atomics[obj]; ok && !s.elem {
				flag(e.Pos(), obj, s)
			}
		}
		return true
	})
	return found
}

// insideAtomicArg reports whether the index expression's base identifier
// was consumed by an atomic access (&x[i] passed to an atomic operation).
func insideAtomicArg(p *Pass, e *ast.IndexExpr, consumed map[*ast.Ident]bool) bool {
	switch x := ast.Unparen(e.X).(type) {
	case *ast.Ident:
		return consumed[x]
	case *ast.SelectorExpr:
		return consumed[x.Sel]
	}
	return false
}

// atomicBase resolves the location behind an atomic address argument:
// &x → (x, elem=false), &x[i] → (x, elem=true), &s.f → (f, false),
// &s.f[i] → (f, true). Returns the base identifier so the use site can be
// excluded from the plain-access scan.
func atomicBase(p *Pass, arg ast.Expr) (types.Object, bool, *ast.Ident) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, false, nil
	}
	inner := ast.Unparen(un.X)
	elem := false
	if ix, ok := inner.(*ast.IndexExpr); ok {
		inner = ast.Unparen(ix.X)
		elem = true
	}
	switch e := inner.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return obj, elem, e
		}
	case *ast.SelectorExpr:
		if obj := referencedObj(p, e); obj != nil {
			return obj, elem, e.Sel
		}
	}
	return nil, false, nil
}

// atomicArgIndices returns the argument positions of call that are atomic
// address arguments: position 0 for direct sync/atomic operations, and the
// atomically-forwarded pointer-parameter positions for module wrappers.
func atomicArgIndices(p *Pass, call *ast.CallExpr) []int {
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "sync/atomic" && isAtomicOpName(fn.Name()) {
		return []int{0}
	}
	if p.Mod == nil {
		return nil
	}
	flags := p.Mod.CallGraph().AtomicParams(fn)
	var idxs []int
	for i, atomic := range flags {
		if atomic {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// isAtomicOpName matches the sync/atomic package functions that take an
// address: Load*, Store*, Add*, Swap*, CompareAndSwap*, And*, Or*.
func isAtomicOpName(name string) bool {
	for _, prefix := range [...]string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the statically-called function of a call expression.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// shortFile trims a path to its final element for compact messages.
func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
