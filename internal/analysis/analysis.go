// Package analysis is a stdlib-only static-analysis framework (built on
// go/ast, go/parser, go/token, go/types) that encodes this repository's
// correctness invariants as machine-checked lint rules:
//
//   - floatcmp:    no ==/!= on floating-point values (δ thresholds, model
//     parameters) outside the approved epsilon helpers in internal/fp
//   - walltime:    no wall-clock calls (time.Now etc.) inside kernel
//     callbacks whose cost is charged to the simulated machine
//   - hotalloc:    no fmt calls, string concatenation, or interface boxing
//     inside kernel callbacks covered by the zero-allocation gates
//   - layering:    algorithm packages must not import presentation or
//     harness layers, and base layers must not import upward
//   - poolcapture: no unguarded writes to captured shared variables inside
//     parallel.Pool kernel callbacks
//   - errcheck:    no discarded error returns (including deferred calls) in
//     non-test code
//   - determinism: no map ranges, multi-case selects, or transitive
//     wall-clock/rand reads in flight-replayed code
//   - atomicmix:   no mixing of sync/atomic and plain accesses on the same
//     variable or field within a package
//   - leakspawn:   goroutine spawns must be bounded and channel ops must
//     have an unblock path
//   - hotescape:   no unbounded append growth or escaping loop closures on
//     //hot:alloc-free paths and in kernel callbacks
//
// The flow-aware rules are built on two module-wide structures, both
// stdlib-only: an intra-procedural control-flow graph (cfg.go) and a
// CHA-expanded call graph over every package in the module (callgraph.go).
//
// The framework also polices its own escape hatch: a lint:ignore directive
// that suppressed nothing during a full run is reported under the
// "staleignore" pseudo-rule, so suppressions cannot outlive the findings
// that justified them.
//
// The framework deliberately avoids golang.org/x/tools: packages are loaded
// and type-checked with a small module-aware loader (see loader.go), and
// each rule is a Checker run over a type-checked Pass. cmd/lint is the CLI
// front end; scripts/check.sh wires it into the tier-2 verification gate.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Severity classifies a finding. Both severities fail the lint gate; the
// distinction exists so reports read correctly and future rules can demote
// heuristic checks without changing the findings model.
type Severity int

const (
	// Warning marks heuristic findings that may need a lint:ignore with a
	// stated reason rather than a code change.
	Warning Severity = iota
	// Error marks violations of hard invariants.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one rule violation at one source position.
type Finding struct {
	Pos      token.Position
	Rule     string
	Severity Severity
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s] %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Severity, f.Rule, f.Message)
}

// Checker is one lint rule. Checkers are stateless: Check may be called for
// many packages and must derive everything from the Pass.
type Checker interface {
	// ID is the short rule identifier used in reports and lint:ignore
	// directives.
	ID() string
	// Doc is a one-line description of the invariant the rule protects.
	Doc() string
	// Check inspects one type-checked package and returns its findings.
	Check(p *Pass) []Finding
}

// DefaultCheckers returns the full rule set in report order.
func DefaultCheckers() []Checker {
	return []Checker{
		&FloatCmp{},
		&WallTime{},
		&HotAlloc{},
		&Layering{},
		&PoolCapture{},
		&ErrCheck{},
		&Determinism{},
		&AtomicMix{},
		&LeakSpawn{},
		&HotEscape{},
	}
}

// CheckerByID returns the named checker from DefaultCheckers, or nil.
func CheckerByID(id string) Checker {
	for _, c := range DefaultCheckers() {
		if c.ID() == id {
			return c
		}
	}
	return nil
}

// Run loads the module containing dir, applies the checkers to every
// non-test package, and returns all findings sorted by position. Findings
// suppressed by a "//lint:ignore <rule> <reason>" comment on the same or
// preceding line are dropped; directives that suppress nothing are
// themselves reported under the "staleignore" pseudo-rule (see
// staleIgnoreFindings).
func Run(dir string, checkers []Checker) ([]Finding, error) {
	mod, err := Load(dir)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, p := range mod.Pkgs {
		for _, c := range checkers {
			for _, f := range c.Check(p) {
				if p.ignored(f.Pos, c.ID()) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	for _, p := range mod.Pkgs {
		out = append(out, staleIgnoreFindings(p, checkers)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, nil
}

// StaleIgnoreRule is the pseudo-rule ID under which Run reports lint:ignore
// directives that suppressed nothing. It is framework-level, not a Checker:
// staleness is only known after every active rule has run.
const StaleIgnoreRule = "staleignore"

// staleIgnoreFindings reports the suppression debt in one package after the
// checkers ran: listed rules that suppressed no finding, and rule names no
// checker answers to. A rule is only judged when it was active in this run —
// under a -rule subset, directives for the inactive rules are left alone.
// An "all" directive is judged only when the active set covers the full
// default set, since any missing rule could be the one it suppresses.
func staleIgnoreFindings(p *Pass, checkers []Checker) []Finding {
	active := make(map[string]bool, len(checkers))
	for _, c := range checkers {
		active[c.ID()] = true
	}
	fullSet := true
	known := map[string]bool{}
	for _, c := range DefaultCheckers() {
		known[c.ID()] = true
		if !active[c.ID()] {
			fullSet = false
		}
	}
	var out []Finding
	flag := func(d *ignoreDirective, msg string) {
		out = append(out, Finding{Pos: d.pos, Rule: StaleIgnoreRule, Severity: Warning, Message: msg})
	}
	for _, lines := range p.ignores {
		for _, d := range lines {
			rules := make([]string, 0, len(d.rules))
			for r := range d.rules {
				rules = append(rules, r)
			}
			sort.Strings(rules)
			for _, r := range rules {
				switch {
				case r == "all":
					if fullSet && len(d.used) == 0 {
						flag(d, "lint:ignore all suppresses no findings; remove the directive or narrow it to a real one")
					}
				case !known[r]:
					flag(d, fmt.Sprintf("lint:ignore names unknown rule %q; fix the rule ID or remove it", r))
				case active[r] && !d.used[r]:
					flag(d, fmt.Sprintf("lint:ignore %s suppresses no %s findings; the code below is clean — remove the directive", r, r))
				}
			}
		}
	}
	return out
}
