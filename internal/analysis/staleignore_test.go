package analysis

import (
	"strings"
	"testing"
)

func TestStaleIgnoreReportsUnusedAndUnknown(t *testing.T) {
	src := `package a

import "os"

func used() {
	//lint:ignore errcheck best-effort cleanup
	os.Remove("x")
}

func stale() {
	//lint:ignore errcheck nothing here discards an error
	x := 1
	_ = x
}

func typo() {
	//lint:ignore errchk misspelled rule id
	os.Remove("y")
}
`
	p := singleFixture(t, src)
	// The errcheck run marks directives used; the typo'd one suppresses
	// nothing, so the discard it meant to cover still fires.
	expectLines(t, runRule(t, &ErrCheck{}, p), 18)

	fs := staleIgnoreFindings(p, []Checker{&ErrCheck{}})
	expectLines(t, fs, 11, 17)
	for _, f := range fs {
		if f.Rule != StaleIgnoreRule {
			t.Fatalf("stale report under rule %q, want %q", f.Rule, StaleIgnoreRule)
		}
	}
	if !strings.Contains(fs[0].Message, "suppresses no errcheck findings") {
		t.Fatalf("stale message: %s", fs[0].Message)
	}
	if !strings.Contains(fs[1].Message, `unknown rule "errchk"`) {
		t.Fatalf("unknown-rule message: %s", fs[1].Message)
	}
}

func TestStaleIgnoreAllNeedsFullRuleSet(t *testing.T) {
	src := `package a

import "os"

func busy() {
	//lint:ignore all best-effort cleanup
	os.Remove("x")
}

func clean() int {
	//lint:ignore all overly defensive
	return 1
}
`
	full := DefaultCheckers()
	p := singleFixture(t, src)
	for _, c := range full {
		runRule(t, c, p)
	}
	// Under the full set, only the directive that suppressed nothing is
	// stale (line 11); the one covering the os.Remove discard is earning
	// its keep.
	expectLines(t, staleIgnoreFindings(p, full), 11)

	// Under a subset, "all" cannot be judged: any inactive rule might be
	// the one it suppresses.
	p2 := singleFixture(t, src)
	runRule(t, &ErrCheck{}, p2)
	expectLines(t, staleIgnoreFindings(p2, []Checker{&ErrCheck{}}))
}
