package analysis

import (
	"strings"
	"testing"
)

func TestDeterminismFlagsSourcesReachableFromReplay(t *testing.T) {
	src := `package a

import "time"

type report struct{ n int }

func ReplayFlight(state map[string]float64) *report {
	rep := &report{}
	replayStep(state, rep)
	return rep
}

func replayStep(state map[string]float64, rep *report) {
	for k, v := range state { // line 14: map range in replayed code
		_ = k
		_ = v
	}
	rep.n = stamp() // reaches time.Now two hops down
}

func stamp() int { return clock() }

func clock() int { return int(time.Now().Unix()) } // line 23: wall read

func unrelated(m map[int]int) int {
	s := 0
	for _, v := range m { // not replay-reachable: allowed
		s += v
	}
	return s
}
`
	p := singleFixture(t, src)
	fs := runRule(t, &Determinism{}, p)
	expectLines(t, fs, 14, 23)
	// The findings carry the root path for triage.
	for _, f := range fs {
		if !strings.Contains(f.Message, "ReplayFlight") {
			t.Fatalf("finding lacks replay-root path: %s", f.Message)
		}
	}
}

func TestDeterminismMultiCaseSelect(t *testing.T) {
	src := `package a

func ReplayFlight(a, b chan int) int {
	select { // line 4: two ready cases race
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func oneCase(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
`
	p := singleFixture(t, src)
	fs := runRule(t, &Determinism{}, p)
	expectLines(t, fs, 4)
}

func TestDeterminismFlightReplayedMarker(t *testing.T) {
	src := `package a

import "math/rand"

// recordStep is the record-side twin of the replay logic.
//
//flight:replayed
func recordStep() float64 {
	return rand.Float64() // line 9: global rand in marked code
}

func freeAgent() float64 { return rand.Float64() } // unmarked, unreachable: allowed
`
	p := singleFixture(t, src)
	fs := runRule(t, &Determinism{}, p)
	expectLines(t, fs, 9)
}

func TestDeterminismSeededRandAllowed(t *testing.T) {
	src := `package a

import "math/rand"

func ReplayFlight(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64() // seeded source: deterministic, allowed
}
`
	p := singleFixture(t, src)
	expectLines(t, runRule(t, &Determinism{}, p))
}
