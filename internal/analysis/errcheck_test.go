package analysis

import "testing"

func TestErrCheck(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "flags bare call discarding an error",
			src: `package a
import "os"
func f() {
	os.Remove("x")
}
`,
			want: []int{4},
		},
		{
			name: "flags blank assignment of an error result",
			src: `package a
import "os"
func f() {
	_ = os.Remove("x")
}
`,
			want: []int{4},
		},
		{
			name: "flags blank error position in a multi-result call",
			src: `package a
import "os"
func f() *os.File {
	g, _ := os.Create("x")
	return g
}
`,
			want: []int{4},
		},
		{
			name: "flags bare method call returning an error",
			src: `package a
import "os"
func f(g *os.File) {
	g.Close()
}
`,
			want: []int{4},
		},
		{
			name: "allows checked errors and error-free calls",
			src: `package a
import "os"
func f() error {
	if err := os.Remove("x"); err != nil {
		return err
	}
	return nil
}
`,
		},
		{
			name: "allows fmt printing to stdout and stderr",
			src: `package a
import (
	"fmt"
	"os"
)
func f() {
	fmt.Println("hi")
	fmt.Fprintf(os.Stderr, "warn\n")
}
`,
		},
		{
			name: "allows in-memory sinks and sticky buffered writers",
			src: `package a
import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)
func f(w io.Writer) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "x")
	b.WriteString("y")
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, b.String())
	return bw.Flush()
}
`,
		},
		{
			name: "deferred Close discards the flush-time error",
			src: `package a
import "os"
func f() {
	g, err := os.Open("x")
	if err != nil {
		return
	}
	defer g.Close() // line 8: a write error surfacing at Close is lost
}
`,
			want: []int{8},
		},
		{
			name: "deferred Flush on a sticky-error writer is allowlisted",
			src: `package a
import (
	"bufio"
	"os"
)
func f() error {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush() // sticky error: the main-path Flush check sees it
	if _, err := w.WriteString("x"); err != nil {
		return err
	}
	return w.Flush()
}
`,
		},
		{
			name: "deferred helper returning error is still flagged",
			src: `package a
func teardown() error { return nil }
func f() {
	defer teardown() // line 4: error dropped at function exit
}
`,
			want: []int{4},
		},
		{
			name: "discarding an error variable is not flagged",
			src: `package a
import "errors"
func f() {
	err := errors.New("x")
	_ = err
}
`,
		},
		{
			name: "suppressed by lint:ignore with reason",
			src: `package a
import "os"
func f() {
	//lint:ignore errcheck best-effort cleanup
	os.Remove("x")
}
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := singleFixture(t, c.src)
			expectLines(t, runRule(t, &ErrCheck{}, p), c.want...)
		})
	}
}
