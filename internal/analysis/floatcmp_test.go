package analysis

import "testing"

func TestFloatCmp(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int // finding lines
	}{
		{
			name: "flags equality on float64 vars",
			src: `package a
func f(x, y float64) bool { return x == y }
`,
			want: []int{2},
		},
		{
			name: "flags inequality on float struct fields",
			src: `package a
type s struct{ d float64 }
func f(a, b s) bool { return a.d != b.d }
`,
			want: []int{3},
		},
		{
			name: "flags float32 and comparison against a float literal",
			src: `package a
func f(x float32) bool { return x != 0 }
func g(y float64) bool { return y == 1.5 }
`,
			want: []int{2, 3},
		},
		{
			name: "ignores integer comparisons",
			src: `package a
func f(x, y int64) bool { return x == y }
`,
		},
		{
			name: "ignores constant-folded comparisons",
			src: `package a
const c = 1.5 == 1.5
`,
		},
		{
			name: "ignores comparison against math.Inf sentinel",
			src: `package a
import "math"
func f(x float64) bool { return x == math.Inf(1) }
`,
		},
		{
			name: "suppressed by lint:ignore with reason",
			src: `package a
func f(x, y float64) bool {
	//lint:ignore floatcmp bit-exact replay comparison is intended
	return x == y
}
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := singleFixture(t, c.src)
			expectLines(t, runRule(t, &FloatCmp{}, p), c.want...)
		})
	}
}

func TestFloatCmpApprovedPackageExempt(t *testing.T) {
	path := fixtureMod + "/internal/fp"
	p := checkFixture(t, map[string]map[string]string{path: {"fp.go": `package fp
func Eq(a, b float64) bool { return a == b }
`}}, path)
	expectLines(t, runRule(t, &FloatCmp{}, p))
}
