package analysis

import (
	"fmt"
	"strconv"
	"strings"
)

// Layering enforces the package dependency architecture. The algorithm
// packages (sssp, core, ...) must stay free of presentation (plot) and
// experiment-harness concerns so they can be reused, benchmarked, and
// verified in isolation; the base layers (graph, parallel, sim, sgd, ...)
// must not import upward, which keeps the dependency graph acyclic and the
// hot paths leaf-like. Rules are expressed on module-relative package paths.
type Layering struct{}

// layerRule forbids packages under Prefix from importing anything under one
// of the Forbidden prefixes (module-relative, "/"-separated).
type layerRule struct {
	prefix    string
	forbidden []string
	reason    string
}

// presentation are the layers no algorithm or base package may depend on.
var presentation = []string{"internal/plot", "internal/harness", "cmd", "examples"}

// upward are the algorithm layers no base package may depend on.
var upward = []string{"internal/sssp", "internal/core"}

var layerRules = []layerRule{
	// Algorithm layer: kernels and controller stay presentation-free.
	{"internal/sssp", presentation, "algorithm packages must not depend on presentation or harness layers"},
	{"internal/core", presentation, "algorithm packages must not depend on presentation or harness layers"},
	{"internal/pagerank", presentation, "algorithm packages must not depend on presentation or harness layers"},
	{"internal/kcore", presentation, "algorithm packages must not depend on presentation or harness layers"},
	{"internal/frontierops", presentation, "algorithm packages must not depend on presentation or harness layers"},

	// Base layer: no presentation, and no importing the algorithms built on
	// top of them (keeps the graph acyclic by construction).
	{"internal/graph", append(upward, presentation...), "base layers must not import upward"},
	{"internal/parallel", append(upward, presentation...), "base layers must not import upward"},
	{"internal/sim", append(upward, presentation...), "base layers must not import upward"},
	{"internal/sgd", append(upward, presentation...), "base layers must not import upward"},
	{"internal/frontier", append(upward, presentation...), "base layers must not import upward"},
	{"internal/bitmap", append(upward, presentation...), "base layers must not import upward"},
	{"internal/gen", append(upward, presentation...), "base layers must not import upward"},
	{"internal/metrics", append(upward, presentation...), "base layers must not import upward"},
	{"internal/dvfs", append(upward, presentation...), "base layers must not import upward"},
	{"internal/power", append(upward, presentation...), "base layers must not import upward"},
	{"internal/fp", append(upward, presentation...), "base layers must not import upward"},
	{"internal/obs", append(upward, presentation...), "base layers must not import upward"},
	{"internal/flight", append(upward, presentation...), "base layers must not import upward"},

	// Nothing in internal may reach into commands.
	{"internal", []string{"cmd", "examples"}, "library packages must not import commands"},
}

func (*Layering) ID() string { return "layering" }

func (*Layering) Doc() string {
	return "package-layering: algorithm/base packages must not import plot, harness, or cmd layers"
}

func (r *Layering) Check(p *Pass) []Finding {
	rel := p.Rel()
	if rel == "" {
		return nil
	}
	var out []Finding
	seen := make(map[string]bool) // one finding per (import, rule) per package
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !underPrefix(path, p.ModPath) {
				continue
			}
			impRel := strings.TrimPrefix(path, p.ModPath+"/")
			for _, rule := range layerRules {
				if !underPrefix(rel, rule.prefix) {
					continue
				}
				for _, forb := range rule.forbidden {
					if !underPrefix(impRel, forb) {
						continue
					}
					key := impRel + "|" + rule.prefix + "|" + forb
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, Finding{
						Pos:      p.Position(imp.Pos()),
						Rule:     r.ID(),
						Severity: Error,
						Message: fmt.Sprintf("package %s must not import %s: %s",
							rel, impRel, rule.reason),
					})
				}
			}
		}
	}
	return out
}

// underPrefix reports whether the "/"-separated path is the prefix itself or
// lies underneath it.
func underPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
