package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Determinism guards the flight recorder's bit-exact replay contract
// (core.ReplayFlight, DESIGN.md §9): every controller decision must be a
// pure function of recorded state, so a recorded run re-executes through
// the live controller code bit-identically. The rule computes the set of
// functions reachable — over the module call graph — from the replay
// roots, and flags the three nondeterminism sources that historically break
// replay guarantees as concurrency grows:
//
//   - ranging over a map (iteration order is randomized per run);
//   - a select with two or more ready communication cases (the runtime
//     picks uniformly at random);
//   - reading the wall clock or the global rand source, directly or
//     through any chain of module calls (methods on a seeded *rand.Rand
//     are deterministic and allowed).
//
// Replay roots are functions named ReplayFlight plus any function whose
// doc comment carries a //flight:replayed marker line (the hook for
// replay-critical code the call graph cannot see into a root from, e.g.
// record-side twins of replay-side logic).
type Determinism struct{}

func (*Determinism) ID() string { return "determinism" }

func (*Determinism) Doc() string {
	return "no map ranges, multi-case selects, or transitive wall-clock/rand reads in flight-replayed code"
}

// flightMarked reports whether the doc comment contains the
// //flight:replayed marker line.
func flightMarked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//flight:replayed" {
			return true
		}
	}
	return false
}

// ReplayReachable returns the functions reachable from the module's replay
// roots, mapped to their BFS parents (cached per module).
func (m *Module) ReplayReachable() map[*types.Func]*types.Func {
	if m.replayDone {
		return m.replay
	}
	g := m.CallGraph()
	var roots []*types.Func
	for fn, n := range g.nodes {
		if fn.Name() == "ReplayFlight" || flightMarked(n.Decl.Doc) {
			roots = append(roots, fn)
		}
	}
	m.replay = g.Reachable(roots)
	m.replayDone = true
	return m.replay
}

func (r *Determinism) Check(p *Pass) []Finding {
	if p.Mod == nil {
		return nil
	}
	reach := p.Mod.ReplayReachable()
	if len(reach) == 0 {
		return nil
	}
	g := p.Mod.CallGraph()
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, replayed := reach[fn]; !replayed {
				continue
			}
			via := PathFromRoot(reach, fn)
			out = append(out, r.checkBody(p, g, fn, fd, via)...)
		}
	}
	return out
}

// checkBody scans one flight-replayed function for nondeterminism sources.
func (r *Determinism) checkBody(p *Pass, g *CallGraph, fn *types.Func, fd *ast.FuncDecl, via string) []Finding {
	var out []Finding
	flag := func(pos ast.Node, msg string) {
		out = append(out, Finding{
			Pos:      p.Position(pos.Pos()),
			Rule:     r.ID(),
			Severity: Error,
			Message:  fmt.Sprintf("%s in flight-replayed code (%s)", msg, via),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if t := p.Info.Types[st.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					flag(st, "map range (iteration order is randomized per run; iterate sorted keys instead)")
				}
			}
		case *ast.SelectStmt:
			comm := 0
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				flag(st, fmt.Sprintf("select with %d communication cases (the runtime picks among ready cases pseudo-randomly)", comm))
			}
		}
		return true
	})
	// Direct wall-clock/rand uses inside this function (the call graph
	// attributes closure bodies to the declaration, matching the scan
	// above which descends into FuncLits too).
	if n := g.Node(fn); n != nil {
		for i := range n.Wall {
			use := &n.Wall[i]
			out = append(out, Finding{
				Pos:      p.Position(use.Pos),
				Rule:     r.ID(),
				Severity: Error,
				Message: fmt.Sprintf("%s read in flight-replayed code (%s): replayed decisions must derive only from recorded state",
					use.Name, via),
			})
		}
	}
	return out
}
