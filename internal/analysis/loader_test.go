package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file tree (relative path -> content) under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadModule(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":        "module example.com/tmp\n\ngo 1.22\n",
		"root.go":       "package tmp\n\nconst Root = 1\n",
		"a/a.go":        "package a\n\nimport \"example.com/tmp/b\"\n\nvar _ = b.V\n",
		"b/b.go":        "package b\n\nvar V = 2\n",
		"a/a_test.go":   "package a\n\nfunc helperOnlyInTests() {}\n",
		"b/ignored.go":  "//go:build ignore\n\npackage main\n",
		"testdata/x.go": "package broken this is not go\n",
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "example.com/tmp" {
		t.Fatalf("module path = %q", mod.Path)
	}
	var paths []string
	for _, p := range mod.Pkgs {
		paths = append(paths, p.Path)
	}
	want := "example.com/tmp example.com/tmp/a example.com/tmp/b"
	if got := strings.Join(paths, " "); got != want {
		t.Fatalf("packages = %q, want %q", got, want)
	}
	// Rel() strips the module prefix; the root package maps to "".
	if rel := mod.Pkgs[1].Rel(); rel != "a" {
		t.Fatalf("Rel() = %q, want \"a\"", rel)
	}
	if rel := mod.Pkgs[0].Rel(); rel != "" {
		t.Fatalf("root Rel() = %q, want \"\"", rel)
	}
	// Test files are excluded from analysis.
	for _, f := range mod.Pkgs[1].Files {
		name := mod.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Fatalf("test file loaded: %s", name)
		}
	}
}

func TestRunFindsAndSuppresses(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com/tmp\n\ngo 1.22\n",
		"a/a.go": `package a

func bad(x, y float64) bool { return x == y }

func ok(x, y float64) bool {
	//lint:ignore floatcmp fixture demonstrates suppression
	return x == y
}
`,
	})
	// Run discovers the module root from a subdirectory.
	findings, err := Run(filepath.Join(dir, "a"), []Checker{&FloatCmp{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the unsuppressed comparison", findings)
	}
	f := findings[0]
	if f.Rule != "floatcmp" || f.Pos.Line != 3 {
		t.Fatalf("finding = %+v, want floatcmp at line 3", f)
	}
	if f.Severity != Error {
		t.Fatalf("severity = %v, want error", f.Severity)
	}
	if !strings.Contains(f.String(), "[floatcmp]") {
		t.Fatalf("rendered finding missing rule tag: %s", f.String())
	}
}

func TestLoadErrorOnMissingModule(t *testing.T) {
	if _, err := Load(string(filepath.Separator)); err == nil {
		t.Fatal("expected an error loading from a directory without go.mod")
	}
}
