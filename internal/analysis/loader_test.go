package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// writeTree materializes a file tree (relative path -> content) under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadModule(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":        "module example.com/tmp\n\ngo 1.22\n",
		"root.go":       "package tmp\n\nconst Root = 1\n",
		"a/a.go":        "package a\n\nimport \"example.com/tmp/b\"\n\nvar _ = b.V\n",
		"b/b.go":        "package b\n\nvar V = 2\n",
		"a/a_test.go":   "package a\n\nfunc helperOnlyInTests() {}\n",
		"b/ignored.go":  "//go:build ignore\n\npackage main\n",
		"testdata/x.go": "package broken this is not go\n",
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "example.com/tmp" {
		t.Fatalf("module path = %q", mod.Path)
	}
	var paths []string
	for _, p := range mod.Pkgs {
		paths = append(paths, p.Path)
	}
	want := "example.com/tmp example.com/tmp/a example.com/tmp/b"
	if got := strings.Join(paths, " "); got != want {
		t.Fatalf("packages = %q, want %q", got, want)
	}
	// Rel() strips the module prefix; the root package maps to "".
	if rel := mod.Pkgs[1].Rel(); rel != "a" {
		t.Fatalf("Rel() = %q, want \"a\"", rel)
	}
	if rel := mod.Pkgs[0].Rel(); rel != "" {
		t.Fatalf("root Rel() = %q, want \"\"", rel)
	}
	// Test files are excluded from analysis.
	for _, f := range mod.Pkgs[1].Files {
		name := mod.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Fatalf("test file loaded: %s", name)
		}
	}
}

func TestRunFindsAndSuppresses(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com/tmp\n\ngo 1.22\n",
		"a/a.go": `package a

func bad(x, y float64) bool { return x == y }

func ok(x, y float64) bool {
	//lint:ignore floatcmp fixture demonstrates suppression
	return x == y
}
`,
	})
	// Run discovers the module root from a subdirectory.
	findings, err := Run(filepath.Join(dir, "a"), []Checker{&FloatCmp{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the unsuppressed comparison", findings)
	}
	f := findings[0]
	if f.Rule != "floatcmp" || f.Pos.Line != 3 {
		t.Fatalf("finding = %+v, want floatcmp at line 3", f)
	}
	if f.Severity != Error {
		t.Fatalf("severity = %v, want error", f.Severity)
	}
	if !strings.Contains(f.String(), "[floatcmp]") {
		t.Fatalf("rendered finding missing rule tag: %s", f.String())
	}
}

func TestLoadGenerics(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com/tmp\n\ngo 1.22\n",
		"gen/gen.go": `package gen

import "time"

type Pair[T any] struct{ A, B T }

func (p Pair[T]) First() T { return p.A }

func Stamp[T any](v T) (T, time.Time) { return v, time.Now() }
`,
		"use/use.go": `package use

import "example.com/tmp/gen"

func Use() int {
	p := gen.Pair[int]{A: 1, B: 2}
	v, _ := gen.Stamp(p.First())
	return v
}
`,
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := mod.CallGraph()
	var use *CGNode
	for fn, n := range g.nodes {
		if fn.Name() == "Use" {
			use = n
		}
	}
	if use == nil {
		t.Fatal("Use not in call graph")
	}
	// Edges through instantiated generics must normalize to the Origin
	// declaration — both the generic function and the generic method.
	var callees []string
	for _, e := range use.Calls {
		callees = append(callees, e.Callee.Name())
	}
	sort.Strings(callees)
	if got := strings.Join(callees, " "); got != "First Stamp" {
		t.Fatalf("Use callees = %q, want \"First Stamp\"", got)
	}
	// Wall reachability flows through the instantiation to the generic body.
	use2, path := g.WallReach(use.Fn)
	if use2 == nil || !strings.Contains(path, "Stamp") || !strings.HasSuffix(path, "time.Now") {
		t.Fatalf("WallReach(Use) = %v, %q; want a path through Stamp to time.Now", use2, path)
	}
}

func TestLoadBuildTaggedFiles(t *testing.T) {
	// The unsatisfied-tag file and the foreign-GOOS file both declare V;
	// loading either alongside real.go would fail type-checking with a
	// duplicate declaration, so this passes only if constraint evaluation
	// excludes them the way `go build` does.
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":                  "module example.com/tmp\n\ngo 1.22\n",
		"a/real.go":               "package a\n\nconst V = 1\n",
		"a/tagged.go":             "//go:build someunsatisfiedtag\n\npackage a\n\nconst V = 2\n",
		"a/os_" + otherOS + ".go": "package a\n\nconst V = 3\n",
		// A directory that exists only on the other platform disappears
		// entirely instead of failing the module load.
		"ghost/ghost.go": "//go:build " + otherOS + "\n\npackage ghost\n\nconst G = 1\n",
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Pkgs) != 1 || mod.Pkgs[0].Path != "example.com/tmp/a" {
		t.Fatalf("packages = %+v, want only example.com/tmp/a", mod.Pkgs)
	}
	if n := len(mod.Pkgs[0].Files); n != 1 {
		t.Fatalf("loaded %d files in a, want only real.go", n)
	}
}

func TestCallGraphMethodValueSites(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com/tmp\n\ngo 1.22\n",
		"a/a.go": `package a

import "time"

type Clock struct{}

func (Clock) Stamp() time.Time { return time.Now() }

// Grab never calls Stamp syntactically — it only takes the method value.
func Grab() func() time.Time {
	var c Clock
	f := c.Stamp
	return f
}
`,
	})
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := mod.CallGraph()
	var grab *CGNode
	for fn, n := range g.nodes {
		if fn.Name() == "Grab" {
			grab = n
		}
	}
	if grab == nil {
		t.Fatal("Grab not in call graph")
	}
	// A method value escapes Grab and can be invoked anywhere, so the
	// reference site must contribute a conservative call edge.
	if len(grab.Calls) != 1 || grab.Calls[0].Callee.Name() != "Stamp" {
		t.Fatalf("Grab edges = %+v, want one edge to Stamp", grab.Calls)
	}
	if use, path := g.WallReach(grab.Fn); use == nil || !strings.Contains(path, "Stamp") {
		t.Fatalf("WallReach(Grab) = %v, %q; want reach through the method value", use, path)
	}
}

func TestLoadErrorOnMissingModule(t *testing.T) {
	if _, err := Load(string(filepath.Separator)); err == nil {
		t.Fatal("expected an error loading from a directory without go.mod")
	}
}
