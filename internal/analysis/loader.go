package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Pass is one type-checked, non-test package presented to a Checker.
type Pass struct {
	Fset *token.FileSet
	// ModPath is the module path from go.mod (e.g. "energysssp").
	ModPath string
	// Path is the package's import path ("energysssp/internal/sssp").
	Path string
	// Dir is the package's directory on disk.
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Mod points back to the loaded module, giving checkers access to
	// module-wide structures (the call graph). Nil only for hand-built
	// passes that never ask cross-package questions.
	Mod *Module

	// ignores maps filename -> line -> the lint:ignore directive registered
	// there. Directives track which of their listed rules actually
	// suppressed a finding, so Run can report the stale ones.
	ignores map[string]map[int]*ignoreDirective

	// storedKernel caches the variables and fields that are passed to
	// parallel.Pool kernel methods somewhere in the package, so function
	// literals assigned to them are checked as kernel callbacks too.
	// Computed lazily by kernelCallbacks.
	storedKernel map[types.Object]bool
}

// Rel returns the package path relative to the module root ("internal/sssp"),
// or "" for the module root package itself.
func (p *Pass) Rel() string {
	if p.Path == p.ModPath {
		return ""
	}
	return strings.TrimPrefix(p.Path, p.ModPath+"/")
}

// Position resolves a token.Pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// ignored reports whether a finding of the given rule at pos is suppressed
// by a lint:ignore directive on the same line or the line above.
func (p *Pass) ignored(pos token.Position, rule string) bool {
	lines := p.ignores[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		d := lines[line]
		if d == nil {
			continue
		}
		for _, r := range [2]string{rule, "all"} {
			if d.rules[r] {
				d.used[r] = true
				return true
			}
		}
	}
	return false
}

// ignoreDirective is one parsed "//lint:ignore rule1,rule2 reason" comment.
type ignoreDirective struct {
	pos   token.Position
	rules map[string]bool
	// used records which listed rules actually suppressed a finding during
	// a Run, feeding the staleignore report.
	used map[string]bool
}

// Module is a loaded, fully type-checked module.
type Module struct {
	Fset *token.FileSet
	Path string // module path
	Dir  string // module root directory
	Pkgs []*Pass

	// cg caches the module call graph (built lazily by CallGraph).
	cg *CallGraph
	// replay caches the flight-replay reachability set (see determinism.go).
	replay     map[*types.Func]*types.Func
	replayDone bool
}

// errNoGoFiles marks a directory with no files buildable under the host's
// build constraints. Load skips such directories; imports of them still fail.
var errNoGoFiles = errors.New("no buildable Go files")

type loader struct {
	fset    *token.FileSet
	modPath string
	modDir  string
	std     types.Importer
	pkgs    map[string]*Pass
	loading map[string]bool
}

// Load locates the module containing dir (by walking up to go.mod), parses
// every non-test package in it, and type-checks them all. Module-local
// imports are resolved from source within the module; standard-library
// imports are compiled from $GOROOT source via go/importer's "source" mode,
// keeping the loader free of toolchain export-data formats and of any
// dependency outside the standard library.
func Load(dir string) (*Module, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		modPath: modPath,
		modDir:  modDir,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Pass),
		loading: make(map[string]bool),
	}
	dirs, err := packageDirs(modDir)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		rel, err := filepath.Rel(modDir, d)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.load(path); err != nil {
			// A directory whose every file is excluded by build constraints
			// is not a package on this platform; an *import* of such a
			// directory still fails below, through importPkg.
			if errors.Is(err, errNoGoFiles) {
				continue
			}
			return nil, fmt.Errorf("analysis: loading %s: %w", path, err)
		}
	}
	mod := &Module{Fset: fset, Path: modPath, Dir: modDir}
	for _, p := range l.pkgs {
		p.Mod = mod
		mod.Pkgs = append(mod.Pkgs, p)
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePath(string(data))
			if path == "" {
				return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
			}
			return d, path, nil
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				return unq
			}
			return rest
		}
	}
	return ""
}

// packageDirs returns every directory under root that contains at least one
// non-test .go file, skipping VCS metadata, testdata, and vendor trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// load parses and type-checks the package at the given module-local import
// path, memoizing the result. Imports of other module packages recurse.
func (l *loader) load(path string) (*Pass, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.modDir
	if path != l.modPath {
		dir = filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	}
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w in %s", errNoGoFiles, dir)
	}
	pkg, info, err := checkFiles(l.fset, path, files, importerFunc(l.importPkg))
	if err != nil {
		return nil, err
	}
	p := &Pass{
		Fset:    l.fset,
		ModPath: l.modPath,
		Path:    path,
		Dir:     dir,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
		ignores: collectIgnores(l.fset, files),
	}
	l.pkgs[path] = p
	return p, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// parseDir parses every non-test .go file in dir with comments (needed for
// lint:ignore directives). Files are filtered through go/build's constraint
// evaluation for the host context, so //go:build lines (including "ignore"
// sentinels and unsatisfied platform tags) and GOOS/GOARCH filename suffixes
// exclude files exactly as `go build` would — loading both halves of a
// per-platform pair would otherwise fail type-checking on duplicate symbols.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkFiles type-checks one package's files. Exposed within the package so
// rule tests can type-check in-memory fixtures through the same path the
// loader uses.
func checkFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// collectIgnores scans file comments for "//lint:ignore rule1,rule2 reason"
// directives. A directive suppresses the listed rules (or "all") on its own
// line and on the line immediately after it.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int]*ignoreDirective {
	out := make(map[string]map[int]*ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]*ignoreDirective)
					out[pos.Filename] = lines
				}
				d := lines[pos.Line]
				if d == nil {
					d = &ignoreDirective{pos: pos, rules: map[string]bool{}, used: map[string]bool{}}
					lines[pos.Line] = d
				}
				for _, r := range strings.Split(fields[0], ",") {
					d.rules[r] = true
				}
			}
		}
	}
	return out
}
