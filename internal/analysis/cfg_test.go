package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body from source and returns it with the
// fileset used, so tests can locate statements by searching the source.
func parseBody(t *testing.T, body string) (*token.FileSet, *ast.File, *ast.BlockStmt) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return fset, f, fd.Body
}

// posOf returns the position of the first occurrence of marker in the
// fixture source, resolved against the parsed file.
func posOf(t *testing.T, fset *token.FileSet, file *ast.File, src, marker string) token.Pos {
	t.Helper()
	full := "package p\n\nfunc f() {\n" + src + "\n}\n"
	idx := strings.Index(full, marker)
	if idx < 0 {
		t.Fatalf("marker %q not in fixture", marker)
	}
	tf := fset.File(file.Pos())
	return tf.Pos(idx)
}

func TestCFGStraightLine(t *testing.T) {
	_, _, body := parseBody(t, `
	x := 1
	x++
	_ = x
`)
	c := BuildCFG(body)
	if !c.Reaches(c.Entry, c.Exit) {
		t.Fatal("entry must reach exit")
	}
	// All three statements land in the entry block.
	if got := len(c.Entry.Nodes); got != 3 {
		t.Fatalf("entry block has %d nodes, want 3", got)
	}
}

func TestCFGIfBranches(t *testing.T) {
	src := `
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	_ = x
`
	fset, file, body := parseBody(t, src)
	c := BuildCFG(body)
	thenB := c.BlockFor(posOf(t, fset, file, src, "x = 2"))
	elseB := c.BlockFor(posOf(t, fset, file, src, "x = 3"))
	join := c.BlockFor(posOf(t, fset, file, src, "_ = x"))
	if thenB == nil || elseB == nil || join == nil {
		t.Fatal("missing blocks for branch arms")
	}
	if thenB == elseB {
		t.Fatal("then and else arms share a block")
	}
	if c.Reaches(thenB, elseB) || c.Reaches(elseB, thenB) {
		t.Fatal("branch arms must not reach each other")
	}
	if !c.Reaches(thenB, join) || !c.Reaches(elseB, join) {
		t.Fatal("both arms must reach the join")
	}
}

func TestCFGLoopDepthAndBackEdge(t *testing.T) {
	src := `
	pre := 0
	for i := 0; i < 10; i++ {
		pre += i
		for j := range make([]int, 3) {
			pre += j
		}
	}
	post := pre
	_ = post
`
	fset, file, body := parseBody(t, src)
	c := BuildCFG(body)
	if d := c.LoopDepth(posOf(t, fset, file, src, "pre := 0")); d != 0 {
		t.Fatalf("pre-loop depth = %d, want 0", d)
	}
	if d := c.LoopDepth(posOf(t, fset, file, src, "pre += i")); d != 1 {
		t.Fatalf("outer body depth = %d, want 1", d)
	}
	if d := c.LoopDepth(posOf(t, fset, file, src, "pre += j")); d != 2 {
		t.Fatalf("inner body depth = %d, want 2", d)
	}
	if d := c.LoopDepth(posOf(t, fset, file, src, "post := pre")); d != 0 {
		t.Fatalf("post-loop depth = %d, want 0", d)
	}
	// The loop body reaches itself through the back edge.
	inner := c.BlockFor(posOf(t, fset, file, src, "pre += i"))
	if !c.Reaches(inner, inner) {
		t.Fatal("loop body must reach itself via the back edge")
	}
}

func TestCFGBreakSkipsLoopTail(t *testing.T) {
	src := `
	hit := 0
	for i := 0; i < 10; i++ {
		if i == 5 {
			break
		}
		hit = i
	}
	_ = hit
`
	fset, file, body := parseBody(t, src)
	c := BuildCFG(body)
	brk := c.BlockFor(posOf(t, fset, file, src, "break"))
	tail := c.BlockFor(posOf(t, fset, file, src, "hit = i"))
	after := c.BlockFor(posOf(t, fset, file, src, "_ = hit"))
	if c.Reaches(brk, tail) {
		t.Fatal("break must not fall through to the loop tail")
	}
	if !c.Reaches(brk, after) {
		t.Fatal("break must reach the statement after the loop")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	src := `
	n := 0
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			n++
		}
		n += 10
	}
	_ = n
`
	fset, file, body := parseBody(t, src)
	c := BuildCFG(body)
	cont := c.BlockFor(posOf(t, fset, file, src, "continue outer"))
	outerTail := c.BlockFor(posOf(t, fset, file, src, "n += 10"))
	innerTail := c.BlockFor(posOf(t, fset, file, src, "n++"))
	if c.Reaches(cont, innerTail) && !c.Reaches(c.Entry, c.Exit) {
		t.Fatal("sanity: entry reaches exit")
	}
	// continue outer jumps to the outer post, skipping both the inner tail
	// (directly) and the outer tail (this iteration). It still reaches
	// them via the next iteration's back edge — what must NOT happen is a
	// direct successor edge into the outer tail.
	for _, s := range cont.Succs {
		if s == outerTail {
			t.Fatal("continue outer must not fall through into the outer loop tail")
		}
	}
}

func TestCFGSelectAndSwitch(t *testing.T) {
	src := `
	ch := make(chan int, 1)
	select {
	case v := <-ch:
		_ = v
	default:
		_ = 0
	}
	switch x := 1; x {
	case 1:
		_ = 11
	case 2:
		_ = 22
	}
	done := 1
	_ = done
`
	fset, file, body := parseBody(t, src)
	c := BuildCFG(body)
	recv := c.BlockFor(posOf(t, fset, file, src, "_ = v"))
	def := c.BlockFor(posOf(t, fset, file, src, "_ = 0"))
	case1 := c.BlockFor(posOf(t, fset, file, src, "_ = 11"))
	case2 := c.BlockFor(posOf(t, fset, file, src, "_ = 22"))
	end := c.BlockFor(posOf(t, fset, file, src, "done := 1"))
	if recv == def || case1 == case2 {
		t.Fatal("case bodies must get distinct blocks")
	}
	for _, b := range []*Block{recv, def, case1, case2} {
		if !c.Reaches(b, end) {
			t.Fatal("every case body must reach the code after the statement")
		}
	}
	// The select statement itself is recorded as a node so rules can
	// locate it via BlockFor.
	selPos := posOf(t, fset, file, src, "select {")
	if c.BlockFor(selPos) == nil {
		t.Fatal("select statement not recorded in any block")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	src := `
	x := 1
	if x > 0 {
		return
	}
	x = 2
	_ = x
`
	fset, file, body := parseBody(t, src)
	c := BuildCFG(body)
	ret := c.BlockFor(posOf(t, fset, file, src, "return"))
	tail := c.BlockFor(posOf(t, fset, file, src, "x = 2"))
	if c.Reaches(ret, tail) {
		t.Fatal("return must not reach subsequent statements")
	}
	if !c.Reaches(ret, c.Exit) {
		t.Fatal("return must reach the exit block")
	}
}

func TestCFGGoto(t *testing.T) {
	src := `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	_ = i
`
	fset, file, body := parseBody(t, src)
	c := BuildCFG(body)
	inc := c.BlockFor(posOf(t, fset, file, src, "i++"))
	if !c.Reaches(inc, inc) {
		t.Fatal("goto back edge must make the labeled block reach itself")
	}
}
