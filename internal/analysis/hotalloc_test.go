package analysis

import "testing"

func TestHotAlloc(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int
	}{
		{
			name: "flags fmt calls inside kernels",
			src: `package a

import (
	"fmt"

	"example.com/fix/internal/parallel"
)

func f(p *parallel.Pool) {
	p.For(10, func(lo, hi int) {
		fmt.Printf("chunk %d..%d\n", lo, hi)
	})
	p.Run(func(w int) {
		err := fmt.Errorf("worker %d", w)
		_ = err
	})
}
`,
			want: []int{11, 14},
		},
		{
			name: "flags non-constant string concatenation and +=",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool, name string) {
	p.For(10, func(lo, hi int) {
		s := "worker " + name
		s += name
		_ = s
	})
}
`,
			want: []int{7, 8},
		},
		{
			name: "allows constant string concatenation",
			src: `package a

import "example.com/fix/internal/parallel"

func f(p *parallel.Pool) {
	p.For(10, func(lo, hi int) {
		const s = "a" + "b"
		_ = s
	})
}
`,
		},
		{
			name: "flags explicit interface conversions, allows interface-to-interface",
			src: `package a

import "example.com/fix/internal/parallel"

type box interface{ m() }

func f(p *parallel.Pool, v int, b box) {
	p.For(10, func(lo, hi int) {
		x := interface{}(v)
		y := interface{}(b)
		_, _ = x, y
	})
}
`,
			want: []int{9},
		},
		{
			name: "flags stored kernel closures, allows solver-level fmt",
			src: `package a

import (
	"fmt"

	"example.com/fix/internal/parallel"
)

type kern struct{ body func(lo, hi int) }

func f(p *parallel.Pool, k *kern) {
	k.body = func(lo, hi int) {
		fmt.Println(lo)
	}
	p.For(10, k.body)
	fmt.Println("done")
}
`,
			want: []int{13},
		},
		{
			name: "flags fmt and boxing inside //hot:alloc-free functions, allows unmarked",
			src: `package a

import "fmt"

//hot:alloc-free
func hot(n int) {
	fmt.Println(n)
	x := interface{}(n)
	_ = x
}

// Marker must be its own doc-comment line; prose mentioning
// hot:alloc-free does not arm the rule.
func cold(n int) {
	fmt.Println(n)
}
`,
			want: []int{7, 8},
		},
		{
			name: "marker applies to methods and respects lint:ignore",
			src: `package a

import "fmt"

type rec struct{ n int }

// Append is the hot path.
//
//hot:alloc-free
func (r *rec) Append(v int) {
	r.n += v
	//lint:ignore hotalloc fixture exercises suppression
	fmt.Println(v)
}
`,
		},
		{
			name: "allows pointer-shaped interface conversions (sync.Pool recycling idiom)",
			src: `package a

import "sync"

type slab struct{ ev [8]int64 }

var slabPool sync.Pool

//hot:alloc-free
func recycle(s *slab, n int, ch chan int) {
	slabPool.Put(s)
	x := interface{}(s)  // pointer: the iface word is the pointer itself
	y := interface{}(ch) // channel: pointer-shaped too
	z := interface{}(n)  // line 14: an int really boxes
	_, _, _ = x, y, z
}
`,
			want: []int{14},
		},
		{
			name: "ignores same-named methods on non-parallel types",
			src: `package a

import "fmt"

type fake struct{}

func (fake) For(n int, body func(lo, hi int)) { body(0, n) }

func f() {
	var fk fake
	fk.For(1, func(lo, hi int) {
		fmt.Println(lo)
	})
}
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := poolFixture(t, c.src)
			expectLines(t, runRule(t, &HotAlloc{}, p), c.want...)
		})
	}
}
