package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. Distances, δ
// thresholds, and model parameters accumulate rounding error, so exact
// equality silently stops holding; the approved epsilon helpers live in
// internal/fp (whose own implementation is exempt). Comparisons where both
// operands are compile-time constants are exact and allowed, as are
// comparisons against math.Inf(..), which is a precise sentinel.
type FloatCmp struct{}

// ApprovedPkg is the package name whose files may compare floats exactly.
const approvedFloatPkg = "fp"

func (*FloatCmp) ID() string { return "floatcmp" }

func (*FloatCmp) Doc() string {
	return "no ==/!= on float values outside the internal/fp epsilon helpers"
}

func (r *FloatCmp) Check(p *Pass) []Finding {
	if p.Pkg.Name() == approvedFloatPkg {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := p.Info.Types[be.X], p.Info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant fold: exact by definition
			}
			if isMathInfCall(p, be.X) || isMathInfCall(p, be.Y) {
				return true
			}
			out = append(out, Finding{
				Pos:      p.Position(be.OpPos),
				Rule:     r.ID(),
				Severity: Error,
				Message: fmt.Sprintf("exact %s on floating-point values; use internal/fp (fp.Eq/fp.Zero) or restructure the comparison",
					be.Op),
			})
			return true
		})
	}
	return out
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isMathInfCall reports whether e is a call to math.Inf.
func isMathInfCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && obj.Name() == "Inf" && obj.Pkg() != nil && obj.Pkg().Path() == "math"
}
