#!/usr/bin/env bash
# Benchmark trajectory harness: runs the solver and advance-kernel
# benchmarks with -benchmem and converts the output into a committed JSON
# snapshot (BENCH_<date>.json) via cmd/benchjson, so ns/op, relaxed-edge
# throughput (MB/s of SetBytes'd edges), and allocs/op can be compared
# across commits.
#
# Every run is also appended as one line to the append-only trajectory
# (results/perf_trajectory.jsonl), the machine-keyed history that
# `go run ./cmd/perfgate gate` judges regressions against.
#
# Usage: scripts/bench.sh [extra go-test args...]
#        scripts/bench.sh -count=5     # median-of-5 snapshot (noise damping)
#
#   BENCH_PATTERN  benchmark regexp      (default: Advance|NearFar|SelfTuning|Batch|Obs|Span|Flight|FarQueue)
#   BENCH_TIME     -benchtime value      (default: 1s)
#   BENCH_OUT      output JSON path      (default: BENCH_<date>.json in repo root)
#   BENCH_NOTE     note stored in the snapshot
#   BENCH_TRAJ     trajectory JSONL path (default: results/perf_trajectory.jsonl;
#                  set to "" to skip appending)
#
# Single-machine caveat: numbers are only comparable against snapshots taken
# on the same hardware; each entry records go version, GOMAXPROCS, and
# cpu_model, and perfgate never compares entries across machine keys.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern=${BENCH_PATTERN:-'Advance|NearFar|SelfTuning|Batch|Obs|Span|Flight|FarQueue'}
benchtime=${BENCH_TIME:-1s}
traj=${BENCH_TRAJ-results/perf_trajectory.jsonl}

args=(-out "${BENCH_OUT:-}")
[[ -z "${BENCH_OUT:-}" ]] && args=()
[[ -n "${BENCH_NOTE:-}" ]] && args+=(-note "$BENCH_NOTE")
[[ -n "$traj" ]] && args+=(-trajectory "$traj")

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem "$@" . \
  | go run ./cmd/benchjson "${args[@]}"
