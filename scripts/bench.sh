#!/usr/bin/env bash
# Benchmark trajectory harness: runs the solver and advance-kernel
# benchmarks with -benchmem and converts the output into a committed JSON
# snapshot (BENCH_<date>.json) via cmd/benchjson, so ns/op, relaxed-edge
# throughput (MB/s of SetBytes'd edges), and allocs/op can be compared
# across commits.
#
# Usage: scripts/bench.sh [extra go-test args...]
#        scripts/bench.sh -count=5     # median-of-5 snapshot (noise damping)
#
#   BENCH_PATTERN  benchmark regexp      (default: Advance|NearFar|SelfTuning|Batch|Obs)
#   BENCH_TIME     -benchtime value      (default: 1s)
#   BENCH_OUT      output JSON path      (default: BENCH_<date>.json in repo root)
#   BENCH_NOTE     note stored in the snapshot
#
# Single-machine caveat: numbers are only comparable against snapshots taken
# on the same hardware; the snapshot records cpus/cpu_model so mismatched
# comparisons are at least visible.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern=${BENCH_PATTERN:-'Advance|NearFar|SelfTuning|Batch|Obs'}
benchtime=${BENCH_TIME:-1s}

args=(-out "${BENCH_OUT:-}")
[[ -z "${BENCH_OUT:-}" ]] && args=()
[[ -n "${BENCH_NOTE:-}" ]] && args+=(-note "$BENCH_NOTE")

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem "$@" . \
  | go run ./cmd/benchjson "${args[@]}"
