#!/usr/bin/env bash
# Tier-2 verification gate: static analysis plus race-detector runs on the
# concurrent packages. Tier-1 (go build && go test ./...) checks behavior;
# this script checks the invariants behavior tests can miss — float equality
# on controller state, wall-clock leaks into simulated kernels (direct or
# transitive through the call graph), layering violations, unguarded captures
# in Pool callbacks, discarded errors (including deferred calls),
# nondeterminism in flight-replayed code, atomic/plain access mixes, unbounded
# goroutine spawns, and allocation growth on hot paths — then hammers the
# concurrent hot paths under -race.
#
# Usage: scripts/check.sh            (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "==> lint self-check: rule filtering and JSON output on internal/analysis"
# The linter's own package must stay clean under its full rule set, and the
# -rule / -json plumbing must keep producing exit 0 + a JSON array — these
# are the interfaces CI annotations consume.
go run ./cmd/lint -rule determinism,atomicmix,leakspawn,hotescape ./internal/analysis/...
lint_json="$(go run ./cmd/lint -json ./internal/analysis/...)"
[[ "$lint_json" == "["* ]] || { echo "lint -json did not emit a JSON array" >&2; exit 1; }

echo "==> go test -race (concurrent packages)"
go test -race ./internal/parallel/... ./internal/frontier/... ./internal/sssp/... \
    ./internal/obs/... ./internal/flight/... ./internal/core/... \
    ./internal/perf/... ./internal/incident/... ./internal/slo/...

echo "==> go test -race: concurrent solves on one shared observer (API level)"
# Two racing solves must stay bit-identical to their sequential runs while
# recording disjoint span trees and exact fleet-equals-sum-of-scopes metrics.
go test -race -run 'TestConcurrentSolvesIsolated' -count=1 .

echo "==> zero-allocation steady-state gates (obs off, obs on, spans on, flight on, lazy far queue, tsdb sampler, profiler labels)"
go test -run 'TestAdvanceSteadyStateAllocs|TestObsSteadyStateAllocs|TestSpanSteadyStateAllocs|TestLazyFarSteadyStateAllocs' -count=1 ./internal/sssp/
go test -run 'TestTracerSteadyStateAllocs|TestEnergyMeterSteadyStateAllocs|TestTSDBSampleSteadyStateAllocs|TestExemplarSteadyStateAllocs' -count=1 ./internal/obs/
go test -run 'TestFlightSteadyStateAllocs' -count=1 ./internal/core/
go test -run 'TestContinuousProfilerSolverPathAllocs' -count=1 ./internal/perf/

echo "==> continuous-profiler sim-neutrality gate: bit-identical results with profiling on"
go test -run 'TestContinuousProfilerSimNeutral' -count=1 ./internal/perf/

echo "==> flight-recorder gates: record/replay determinism + same-seed diff"
flightbin="$(mktemp -d)"
aggpid=""
trap '[[ -n "$aggpid" ]] && kill "$aggpid" 2>/dev/null || true; rm -rf "$flightbin"' EXIT
go build -o "$flightbin/flight" ./cmd/flight

# Replay determinism on both advance paths: a recorded log must re-execute
# the controller trajectory bit-identically.
"$flightbin/flight" record -dataset cal -scale 0.01 -seed 42 -P 500 -device TK1 \
    -advance vertex -o "$flightbin/vertex.jsonl" 2>/dev/null
"$flightbin/flight" replay -q "$flightbin/vertex.jsonl"
"$flightbin/flight" record -dataset wiki -scale 0.01 -seed 7 -P 500 -workers 4 \
    -advance edge -o "$flightbin/edge.jsonl" 2>/dev/null
"$flightbin/flight" replay -q "$flightbin/edge.jsonl"

# Same-seed diff: two sequential (-workers 1) runs of one configuration must
# produce bit-identical logs. Parallel runs legitimately differ in X2 (the
# atomic-min races resolve differently), so this gate pins workers.
"$flightbin/flight" record -dataset cal -scale 0.01 -seed 42 -P 500 -device TK1 \
    -workers 1 -o "$flightbin/run-a.jsonl" 2>/dev/null
"$flightbin/flight" record -dataset cal -scale 0.01 -seed 42 -P 500 -device TK1 \
    -workers 1 -o "$flightbin/run-b.jsonl" 2>/dev/null
"$flightbin/flight" diff "$flightbin/run-a.jsonl" "$flightbin/run-b.jsonl" >/dev/null

echo "==> incident-capture smoke: forced detector fire writes a complete, replayable bundle"
# A live solve with the online detector sensitized to fire on any healthy
# run (escape band 1.01 around an absurd set-point) must leave a bundle
# containing every artifact, with the manifest written last as the
# completeness marker, whose flight log replays bit-exactly.
go build -o "$flightbin/sssp" ./cmd/sssp
incdir="$flightbin/incidents"
"$flightbin/sssp" -dataset cal -scale 0.01 -P 1e9 \
    -detect-escape 1 -detect-band 1.01 -detect-bootstrap 1 \
    -incident-dir "$incdir" >/dev/null
bundle="$(ls -d "$incdir"/incident-* | head -1)"
for f in manifest.json finding.json flight.jsonl series.json energy.json health.json goroutines.txt; do
  [[ -s "$bundle/$f" ]] || { echo "incident bundle missing $f in $bundle" >&2; exit 1; }
done
"$flightbin/flight" replay -q "$bundle/flight.jsonl"
grep -q '"schema": "energysssp-incident/v1"' "$bundle/manifest.json" \
    || { echo "incident manifest schema mismatch" >&2; exit 1; }

echo "==> tsdb snapshot/restore round-trip gate"
# Durable-series invariants: restored history is bit-identical, a restarted
# aggregator resumes (not resets) its merged series, and every damaged
# snapshot fails closed to a fresh store.
go test -run 'TestSnapshotRoundTrip|TestAggregatorCheckpointResume|TestRestoreEdgeCases|TestExportIngestRoundTrip|TestExportCursorResume' \
    -count=1 ./internal/obs/

echo "==> fleet-telemetry smoke: two pushing workers -> one obsagg, SIGTERM-resume"
# End-to-end over real processes and sockets: two sssp workers push NDJSON
# telemetry into an aggregator, obswatch -fleet sees both instances fresh,
# and a SIGTERM'd aggregator restarted on the same snapshot dir reports the
# restored series.
go build -o "$flightbin/obsagg" ./cmd/obsagg
go build -o "$flightbin/obswatch" ./cmd/obswatch
aggdir="$flightbin/aggstate"
agglog="$flightbin/obsagg.log"
aggpid=""
"$flightbin/obsagg" -listen 127.0.0.1:0 -snapshot-dir "$aggdir" -checkpoint 1s >"$agglog" 2>&1 &
aggpid=$!
addr=""
for _ in $(seq 100); do
  addr="$(sed -n 's|.*fleet surface: http://\([^/]*\)/metrics.*|\1|p' "$agglog")"
  [[ -n "$addr" ]] && break
  sleep 0.1
done
[[ -n "$addr" ]] || { echo "obsagg never announced its listen address" >&2; exit 1; }

"$flightbin/sssp" -dataset cal -scale 0.01 -push-url "http://$addr/ingest" \
    -instance w1 -push-period 200ms -series-period 50ms >/dev/null
"$flightbin/sssp" -dataset cal -scale 0.005 -push-url "http://$addr/ingest" \
    -instance w2 -push-period 200ms -series-period 50ms >/dev/null

snap="$("$flightbin/obswatch" -addr "$addr" -fleet -once -match instance)"
grep -q '^w1 ' <<<"$snap" || { echo "fleet snapshot missing instance w1:" >&2; echo "$snap" >&2; exit 1; }
grep -q '^w2 ' <<<"$snap" || { echo "fleet snapshot missing instance w2:" >&2; echo "$snap" >&2; exit 1; }
grep -q 'instance="w1"' <<<"$snap" || { echo "merged series lack instance labels:" >&2; echo "$snap" >&2; exit 1; }

kill -TERM "$aggpid"
wait "$aggpid" || { echo "obsagg did not shut down cleanly on SIGTERM" >&2; exit 1; }
aggpid=""
[[ -s "$aggdir/manifest.json" ]] || { echo "final checkpoint left no manifest in $aggdir" >&2; exit 1; }

agglog2="$flightbin/obsagg2.log"
"$flightbin/obsagg" -listen 127.0.0.1:0 -snapshot-dir "$aggdir" >"$agglog2" 2>&1 &
aggpid=$!
addr2=""
for _ in $(seq 100); do
  addr2="$(sed -n 's|.*fleet surface: http://\([^/]*\)/metrics.*|\1|p' "$agglog2")"
  [[ -n "$addr2" ]] && break
  sleep 0.1
done
[[ -n "$addr2" ]] || { echo "restarted obsagg never announced its listen address" >&2; exit 1; }
snap2="$("$flightbin/obswatch" -addr "$addr2" -fleet -once)"
grep -q 'restored' <<<"$snap2" || { echo "restarted obsagg did not restore the checkpoint:" >&2; echo "$snap2" >&2; exit 1; }
kill -TERM "$aggpid"
wait "$aggpid" || true
aggpid=""

echo "==> perfgate: committed trajectory parses and judges clean"
# Always-on smoke: the committed snapshots + trajectory must load and the
# latest entry must classify without regressions (compare never fails a
# young or machine-mismatched history, only a broken one).
go run ./cmd/perfgate compare

if [[ "${PERF_GATE:-0}" == "1" ]]; then
  echo "==> perfgate: statistical regression gate (PERF_GATE=1)"
  # Opt-in because it is only meaningful right after a scripts/bench.sh run
  # on the same machine the history was recorded on.
  go run ./cmd/perfgate gate -v
fi

echo "==> check.sh: all gates green"
