#!/usr/bin/env bash
# Tier-2 verification gate: static analysis plus race-detector runs on the
# concurrent packages. Tier-1 (go build && go test ./...) checks behavior;
# this script checks the invariants behavior tests can miss — float equality
# on controller state, wall-clock leaks into simulated kernels, layering
# violations, unguarded captures in Pool callbacks, and discarded errors —
# then hammers the concurrent hot paths under -race.
#
# Usage: scripts/check.sh            (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/parallel/... ./internal/sssp/... ./internal/obs/...

echo "==> zero-allocation steady-state gates (obs off, obs on, flight on)"
go test -run 'TestAdvanceSteadyStateAllocs|TestObsSteadyStateAllocs' -count=1 ./internal/sssp/
go test -run 'TestFlightSteadyStateAllocs' -count=1 ./internal/core/

echo "==> flight-recorder gates: record/replay determinism + same-seed diff"
flightbin="$(mktemp -d)"
trap 'rm -rf "$flightbin"' EXIT
go build -o "$flightbin/flight" ./cmd/flight

# Replay determinism on both advance paths: a recorded log must re-execute
# the controller trajectory bit-identically.
"$flightbin/flight" record -dataset cal -scale 0.01 -seed 42 -P 500 -device TK1 \
    -advance vertex -o "$flightbin/vertex.jsonl" 2>/dev/null
"$flightbin/flight" replay -q "$flightbin/vertex.jsonl"
"$flightbin/flight" record -dataset wiki -scale 0.01 -seed 7 -P 500 -workers 4 \
    -advance edge -o "$flightbin/edge.jsonl" 2>/dev/null
"$flightbin/flight" replay -q "$flightbin/edge.jsonl"

# Same-seed diff: two sequential (-workers 1) runs of one configuration must
# produce bit-identical logs. Parallel runs legitimately differ in X2 (the
# atomic-min races resolve differently), so this gate pins workers.
"$flightbin/flight" record -dataset cal -scale 0.01 -seed 42 -P 500 -device TK1 \
    -workers 1 -o "$flightbin/run-a.jsonl" 2>/dev/null
"$flightbin/flight" record -dataset cal -scale 0.01 -seed 42 -P 500 -device TK1 \
    -workers 1 -o "$flightbin/run-b.jsonl" 2>/dev/null
"$flightbin/flight" diff "$flightbin/run-a.jsonl" "$flightbin/run-b.jsonl" >/dev/null

echo "==> perfgate: committed trajectory parses and judges clean"
# Always-on smoke: the committed snapshots + trajectory must load and the
# latest entry must classify without regressions (compare never fails a
# young or machine-mismatched history, only a broken one).
go run ./cmd/perfgate compare

if [[ "${PERF_GATE:-0}" == "1" ]]; then
  echo "==> perfgate: statistical regression gate (PERF_GATE=1)"
  # Opt-in because it is only meaningful right after a scripts/bench.sh run
  # on the same machine the history was recorded on.
  go run ./cmd/perfgate gate -v
fi

echo "==> check.sh: all gates green"
