#!/usr/bin/env bash
# Tier-2 verification gate: static analysis plus race-detector runs on the
# concurrent packages. Tier-1 (go build && go test ./...) checks behavior;
# this script checks the invariants behavior tests can miss — float equality
# on controller state, wall-clock leaks into simulated kernels, layering
# violations, unguarded captures in Pool callbacks, and discarded errors —
# then hammers the concurrent hot paths under -race.
#
# Usage: scripts/check.sh            (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/parallel/... ./internal/sssp/... ./internal/obs/...

echo "==> zero-allocation steady-state gates (obs off and on)"
go test -run 'TestAdvanceSteadyStateAllocs|TestObsSteadyStateAllocs' -count=1 ./internal/sssp/

echo "==> check.sh: all gates green"
