// Powercap: the paper's future-work idea (Section 6) made concrete — close
// the loop on *measured power* instead of parallelism. The paper could not
// do this on the Jetson boards because fine-grained power readings weren't
// available to the controller; with the simulated board's PowerMon the
// set-point P can be auto-tuned until average board power meets a cap.
//
// The search exploits the Figure 8 relationship: average power increases
// monotonically with P, so a bisection over log P converges in a handful of
// probe runs.
package main

import (
	"fmt"
	"log"
	"math"

	energysssp "energysssp"
)

func measure(g *energysssp.Graph, p float64) (*energysssp.RunOutput, error) {
	return energysssp.Run(g, 0, energysssp.RunConfig{
		Algorithm: energysssp.SelfTuning,
		SetPoint:  p,
		Workers:   -1,
		Device:    "TK1",
		Profile:   true,
	})
}

func main() {
	const capWatts = 3.8 // board-level power budget
	g := energysssp.CalLike(0.02, 42)
	fmt.Printf("graph: %v\npower cap: %.2f W (TK1 board)\n\n", g, capWatts)

	lo, hi := math.Log(64.0), math.Log(16384.0)
	var best *energysssp.RunOutput
	bestP := math.Exp(lo)

	fmt.Printf("%10s %10s %10s\n", "P", "avg-power", "sim-time")
	for i := 0; i < 8; i++ {
		p := math.Round(math.Exp((lo + hi) / 2))
		out, err := measure(g, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f %9.2fW %10v\n", p, out.AvgPowerW, out.SimTime.Round(1e5))
		if out.AvgPowerW <= capWatts {
			// Under the cap: remember it and push for more performance.
			best, bestP = out, p
			lo = math.Log(p)
		} else {
			hi = math.Log(p)
		}
	}

	if best == nil {
		fmt.Println("\nno set-point meets the cap; lowest-P run still exceeds it")
		return
	}
	fmt.Printf("\nselected P=%.0f: avg power %.2f W <= %.2f W cap, sim time %v\n",
		bestP, best.AvgPowerW, capWatts, best.SimTime.Round(1e5))
	fmt.Println("(the controller turned a power budget into a parallelism set-point automatically)")
}
