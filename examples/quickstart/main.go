// Quickstart: build a small weighted graph, run the self-tuning SSSP solver
// against the Dijkstra oracle, and print distances plus the parallelism
// profile summary.
package main

import (
	"fmt"
	"log"

	energysssp "energysssp"
)

func main() {
	// A 64x64 grid road network with random weights in [1, 99].
	g := energysssp.Grid(64, 64, 1, 99, 7)
	fmt.Println("graph:", g)

	// Self-tuning SSSP from vertex 0 with a parallelism set-point of 256.
	out, err := energysssp.Run(g, 0, energysssp.RunConfig{
		Algorithm: energysssp.SelfTuning,
		SetPoint:  256,
		Workers:   -1, // all CPUs
		Profile:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("self-tuning:", out.Result)
	fmt.Println("parallelism:", *out.Parallelism)

	// Verify against the sequential reference.
	ref, err := energysssp.Run(g, 0, energysssp.RunConfig{Algorithm: energysssp.Dijkstra})
	if err != nil {
		log.Fatal(err)
	}
	for v := range out.Dist {
		if out.Dist[v] != ref.Dist[v] {
			log.Fatalf("distance mismatch at vertex %d", v)
		}
	}
	fmt.Println("distances verified against Dijkstra ✓")

	// A few shortest distances along the grid diagonal.
	for _, v := range []energysssp.VID{0, 65, 130, 4095} {
		fmt.Printf("dist[%4d] = %d\n", v, out.Dist[v])
	}
}
