// Scalefree: the paper's Wiki study in miniature. First sweeps the fixed
// delta of the near-far baseline to show how delta governs available
// parallelism (Figure 2), then sweeps the self-tuning set-point to show the
// performance/power trade-off on a simulated TK1 (Figure 6b).
package main

import (
	"fmt"
	"log"

	energysssp "energysssp"
)

func main() {
	const scale = 0.01 // ~16k vertices, ~160k arcs
	g := energysssp.WikiLike(scale, 42)
	fmt.Println("scale-free network:", g)

	// Pick the hub as source (always inside the giant component).
	var src energysssp.VID
	var maxDeg int64 = -1
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.OutDegree(energysssp.VID(u)); d > maxDeg {
			maxDeg, src = d, energysssp.VID(u)
		}
	}

	fmt.Println("\ndelta versus parallelism (fixed-delta near-far):")
	fmt.Printf("%8s %10s %10s %8s\n", "delta", "mean-par", "median", "iters")
	for _, delta := range []int64{5, 10, 25, 50, 100, 400} {
		out, err := energysssp.Run(g, src, energysssp.RunConfig{
			Algorithm: energysssp.NearFar, Delta: energysssp.Dist(delta),
			Workers: -1, Profile: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10.0f %10.0f %8d\n",
			delta, out.Parallelism.Mean, out.Parallelism.Median, out.Iterations)
	}

	fmt.Println("\nset-point versus performance and power (self-tuning, TK1):")
	fmt.Printf("%10s %10s %10s %10s\n", "P", "sim-time", "avg-power", "mean-par")
	for _, p := range []float64{500, 2000, 8000, 32000} {
		out, err := energysssp.Run(g, src, energysssp.RunConfig{
			Algorithm: energysssp.SelfTuning, SetPoint: p,
			Workers: -1, Device: "TK1", Profile: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f %10v %9.2fW %10.0f\n",
			p, out.SimTime.Round(1e4), out.AvgPowerW, out.Parallelism.Mean)
	}
	fmt.Println("\nhigher P buys speed at higher power; lower P trades speed for power savings")
}
