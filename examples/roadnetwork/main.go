// Roadnetwork: the paper's Cal study in miniature. Runs the fixed-delta
// near-far baseline and the self-tuning solver on a road-network graph on a
// simulated Jetson TK1, comparing iteration counts, parallelism
// distributions, simulated runtime, and board power — the Figure 5/6 story.
package main

import (
	"fmt"
	"log"

	energysssp "energysssp"
)

func main() {
	const scale = 0.02 // ~38k vertices; raise toward 1.0 for paper size
	g := energysssp.CalLike(scale, 42)
	fmt.Println("road network:", g)

	baseline, err := energysssp.Run(g, 0, energysssp.RunConfig{
		Algorithm:  energysssp.NearFar,
		Delta:      0, // average edge weight
		Workers:    -1,
		Device:     "TK1",
		Profile:    true,
		PowerTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-18s %8s %10s %10s %8s %8s\n",
		"variant", "iters", "sim-time", "avg-power", "median", "cv")
	print := func(name string, out *energysssp.RunOutput) {
		fmt.Printf("%-18s %8d %10v %9.2fW %8.0f %8.2f\n",
			name, out.Iterations, out.SimTime.Round(1e5), out.AvgPowerW,
			out.Parallelism.Median, out.Parallelism.CoefOfVar)
	}
	print("near+far", baseline)

	for _, p := range []float64{200, 400, 800} {
		tuned, err := energysssp.Run(g, 0, energysssp.RunConfig{
			Algorithm:  energysssp.SelfTuning,
			SetPoint:   p,
			Workers:    -1,
			Device:     "TK1",
			Profile:    true,
			PowerTrace: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		print(fmt.Sprintf("self-tuning P=%g", p), tuned)

		// Sanity: identical distances.
		for v := range tuned.Dist {
			if tuned.Dist[v] != baseline.Dist[v] {
				log.Fatalf("distance mismatch at %d", v)
			}
		}
	}
	fmt.Println("\nall variants agree on shortest distances ✓")
	fmt.Println("(the controller holds the median near each set-point with lower variability)")
}
