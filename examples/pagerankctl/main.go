// Pagerankctl: the paper's Section 6 generalization in action. The same
// set-point idea that tunes SSSP's delta is applied to push-based PageRank,
// where the residual threshold θ plays delta's role: lowering θ admits more
// vertices per iteration (more parallelism), raising it defers them.
package main

import (
	"fmt"
	"log"
	"math"

	energysssp "energysssp"
)

func main() {
	g := energysssp.WikiLike(0.005, 42) // scale-free, ~8k vertices
	fmt.Println("graph:", g)

	// Reference ranks by power iteration.
	want := energysssp.PageRankReference(g, 0.85, 1e-14, 5000)

	fmt.Printf("\n%12s %10s %10s %12s\n", "schedule", "iters", "pushes", "L1 error")
	show := func(name string, res energysssp.PageRankResult) {
		var diff float64
		for i := range want {
			diff += math.Abs(res.Ranks[i] - want[i])
		}
		fmt.Printf("%12s %10d %10d %12.2e\n", name, res.Iterations, res.Pushes, diff)
	}

	// Maximum parallelism: process every active vertex each iteration.
	all, err := energysssp.PageRank(g, energysssp.PageRankConfig{Theta: 0, Workers: -1})
	if err != nil {
		log.Fatal(err)
	}
	show("theta=eps", all)

	// Frontier-size control at three set-points.
	for _, p := range []float64{64, 512, 4096} {
		res, err := energysssp.PageRank(g, energysssp.PageRankConfig{SetPoint: p, Workers: -1})
		if err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("P=%.0f", p), res)
	}

	fmt.Println("\nall schedules converge to the same ranks; the set-point trades")
	fmt.Println("iterations (serial steps) against frontier width (parallel work),")
	fmt.Println("exactly like delta does for SSSP")
}
