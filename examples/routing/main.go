// Routing: point-to-point queries on the road network — the application
// behind the paper's Cal dataset (the DIMACS *Shortest Path Challenge* is a
// routing benchmark). Compares three query engines built on the library's
// SSSP machinery: early-terminating Dijkstra, bidirectional search, and an
// ALT (A* + landmarks) index, all verified to agree.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	energysssp "energysssp"
)

func main() {
	g := energysssp.CalLike(0.02, 42) // ~38k-vertex road network
	fmt.Println("road network:", g)

	fmt.Println("preprocessing 8 landmarks...")
	router, err := energysssp.NewRouter(g, 8, 0)
	if err != nil {
		log.Fatal(err)
	}
	transpose := g.Transpose()

	rng := rand.New(rand.NewPCG(7, 7))
	type totals struct {
		settled int
		queries int
	}
	var dj, bi, alt totals

	fmt.Printf("\n%8s %8s %10s %10s %10s\n", "s", "t", "dijkstra", "bidir", "alt")
	for q := 0; q < 8; q++ {
		s := energysssp.VID(rng.IntN(g.NumVertices()))
		t := energysssp.VID(rng.IntN(g.NumVertices()))

		rd, err := energysssp.QueryDijkstra(g, s, t)
		if err != nil {
			log.Fatal(err)
		}
		rb, err := energysssp.QueryBidirectional(g, transpose, s, t)
		if err != nil {
			log.Fatal(err)
		}
		ra, err := router.Query(s, t)
		if err != nil {
			log.Fatal(err)
		}
		if rd.Dist != rb.Dist || rd.Dist != ra.Dist {
			log.Fatalf("engines disagree: %d %d %d", rd.Dist, rb.Dist, ra.Dist)
		}
		fmt.Printf("%8d %8d %10d %10d %10d   (dist %d, %d hops)\n",
			s, t, rd.Settled, rb.Settled, ra.Settled, rd.Dist, len(rd.Path))
		dj.settled += rd.Settled
		bi.settled += rb.Settled
		alt.settled += ra.Settled
		dj.queries++
	}

	fmt.Printf("\nsettled vertices per query (avg of %d): dijkstra %d, bidirectional %d (%.1fx less), ALT %d (%.1fx less)\n",
		dj.queries,
		dj.settled/dj.queries,
		bi.settled/dj.queries, float64(dj.settled)/float64(bi.settled),
		alt.settled/dj.queries, float64(dj.settled)/float64(alt.settled))
	fmt.Println("all three engines agree on every distance ✓")
}
