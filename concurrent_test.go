package energysssp

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"energysssp/internal/obs"
)

// scrapeFamilies parses a Prometheus exposition into bare fleet values and
// per-solve values keyed by family name.
func scrapeFamilies(t *testing.T, text string) (fleet map[string]float64, scoped map[string]map[string]float64) {
	t.Helper()
	fleet = map[string]float64{}
	scoped = map[string]map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q: %v", line, err)
		}
		series := line[:sp]
		br := strings.IndexByte(series, '{')
		if br < 0 {
			fleet[series] = v
			continue
		}
		name, labels := series[:br], series[br:]
		i := strings.Index(labels, `solve="`)
		if i < 0 {
			fleet[series] = v // labeled but not scope-scoped (e.g. phase-only)
			continue
		}
		solve := labels[i+len(`solve="`):]
		solve = solve[:strings.IndexByte(solve, '"')]
		// Strip the solve label so the key matches the fleet series.
		stripped := strings.Replace(labels, `,solve="`+solve+`"`, "", 1)
		stripped = strings.Replace(stripped, `solve="`+solve+`"`, "", 1)
		if stripped == "{}" {
			stripped = ""
		}
		if scoped[name+stripped] == nil {
			scoped[name+stripped] = map[string]float64{}
		}
		scoped[name+stripped][solve] = v
	}
	return fleet, scoped
}

// TestConcurrentSolvesIsolated is the acceptance test of the per-solve
// observability plane: two solves racing on one shared Observer must (a)
// produce bit-identical results to their sequential runs, (b) record
// disjoint span trees — one solve root per scope, iteration spans matching
// each run's own iteration count, never interleaved — and (c) leave the
// fleet /metrics as the exact sum of the two per-solve label sets.
func TestConcurrentSolvesIsolated(t *testing.T) {
	g := CalLike(0.01, 42)
	srcs := []VID{0, VID(g.NumVertices() / 2)}
	cfg := func(o *Observer) RunConfig {
		return RunConfig{Algorithm: SelfTuning, SetPoint: 200, Device: "TK1", Obs: o}
	}

	// Sequential ground truth, observability off.
	seq := make([]*RunOutput, len(srcs))
	for i, src := range srcs {
		out, err := Run(g, src, cfg(nil))
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = out
	}

	o := NewObserver(0)
	conc := make([]*RunOutput, len(srcs))
	errs := make([]error, len(srcs))
	var wg sync.WaitGroup
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src VID) {
			defer wg.Done()
			conc[i], errs[i] = Run(g, src, cfg(o))
		}(i, src)
	}
	wg.Wait()

	// (a) Bit-identical results under racing instrumentation.
	for i := range srcs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if conc[i].Iterations != seq[i].Iterations {
			t.Errorf("src %d: iterations %d concurrent vs %d sequential", srcs[i], conc[i].Iterations, seq[i].Iterations)
		}
		if math.Float64bits(conc[i].EnergyJ) != math.Float64bits(seq[i].EnergyJ) {
			t.Errorf("src %d: energy %v concurrent vs %v sequential", srcs[i], conc[i].EnergyJ, seq[i].EnergyJ)
		}
		for v := range seq[i].Dist {
			if conc[i].Dist[v] != seq[i].Dist[v] {
				t.Fatalf("src %d: dist[%d] = %d concurrent vs %d sequential", srcs[i], v, conc[i].Dist[v], seq[i].Dist[v])
			}
		}
	}

	// (b) Disjoint span trees: one scope per solve, each with exactly one
	// solve root whose iteration children match that run's count.
	snap := o.TraceSnapshot()
	if len(snap) != len(srcs) {
		t.Fatalf("TraceSnapshot has %d scopes, want %d", len(snap), len(srcs))
	}
	iterCounts := map[int64]int{}
	for _, run := range conc {
		iterCounts[int64(run.Iterations)]++
	}
	names := map[string]bool{}
	for _, sc := range snap {
		if names[sc.Name] {
			t.Fatalf("duplicate scope name %q", sc.Name)
		}
		names[sc.Name] = true
		ids := map[int32]bool{}
		var roots, iters int
		for _, ev := range sc.Spans {
			ids[ev.ID] = true
			switch ev.Kind {
			case obs.SpanSolve:
				roots++
				if ev.Parent != -1 {
					t.Errorf("scope %s: solve span has parent %d", sc.Name, ev.Parent)
				}
			case obs.SpanIter:
				iters++
			}
		}
		for _, ev := range sc.Spans {
			if ev.Parent >= 0 && !ids[ev.Parent] {
				t.Fatalf("scope %s: span %d references parent %d outside its own tree", sc.Name, ev.ID, ev.Parent)
			}
		}
		if roots != 1 {
			t.Errorf("scope %s: %d solve roots, want 1", sc.Name, roots)
		}
		if iterCounts[int64(iters)] == 0 {
			t.Errorf("scope %s: %d iteration spans match no run (want one of %v)", sc.Name, iters, iterCounts)
		}
		iterCounts[int64(iters)]--
	}

	// (c) Fleet series = sum over per-solve label sets, exactly.
	var sb strings.Builder
	if err := o.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fleet, scoped := scrapeFamilies(t, sb.String())
	for _, fam := range []string{
		"sssp_updates_total",
		"sssp_advances_total",
		"sssp_edges_relaxed_total",
		"sssp_solves_total",
		`obs_phase_spans_total{phase="advance"}`,
	} {
		per := scoped[fam]
		if len(per) != len(srcs) {
			t.Errorf("%s: %d per-solve series, want %d (%v)", fam, len(per), len(srcs), per)
			continue
		}
		var sum float64
		for _, v := range per {
			sum += v
		}
		if got, ok := fleet[fam]; !ok || got != sum {
			t.Errorf("%s: fleet %v (present %v) != sum of scopes %v", fam, got, ok, sum)
		}
	}
	if got := fleet["sssp_solves_total"]; got != 2 {
		t.Errorf("sssp_solves_total = %v, want 2", got)
	}

	// Fleet energy chains both scopes' charges; each solve's own energy is
	// exact, so the fleet total matches their sum to rounding.
	wantJ := conc[0].EnergyJ + conc[1].EnergyJ
	ulp := math.Nextafter(wantJ, math.Inf(1)) - wantJ
	if got := o.Energy().TotalJoules(); math.Abs(got-wantJ) > 4*ulp {
		t.Errorf("fleet joules %v, want %v (sum of solves)", got, wantJ)
	}
}

// TestEnergyReportReconciles: the per-phase energy attribution written by
// WriteEnergyReport must telescope back to the machine's own end-minus-start
// figure for the solve within 1 ULP, and the per-strategy ledger must carry
// the whole total under the solver's declared strategy.
func TestEnergyReportReconciles(t *testing.T) {
	g := CalLike(0.01, 7)
	o := NewObserver(0)
	out, err := Run(g, 0, RunConfig{Algorithm: SelfTuning, SetPoint: 200, Device: "TK1", Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEnergyReport(&buf, o); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Phases     map[string]float64 `json:"phases"`
		Strategies map[string]float64 `json:"strategies"`
		TotalJ     float64            `json:"total_joules"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("energy report not JSON: %v\n%s", err, buf.String())
	}

	ulp := math.Nextafter(out.EnergyJ, math.Inf(1)) - out.EnergyJ
	if diff := math.Abs(rep.TotalJ - out.EnergyJ); diff > ulp {
		t.Errorf("report total %v vs machine %v: diff %g exceeds 1 ULP", rep.TotalJ, out.EnergyJ, diff)
	}
	var phaseSum float64
	for _, v := range rep.Phases {
		phaseSum += v
	}
	if diff := math.Abs(phaseSum - out.EnergyJ); diff > 8*ulp {
		t.Errorf("phase sum %v vs machine %v: diff %g", phaseSum, out.EnergyJ, diff)
	}
	if len(rep.Phases) < 2 {
		t.Errorf("energy attribution covers %d phases, want several: %v", len(rep.Phases), rep.Phases)
	}
	var stratSum float64
	for _, v := range rep.Strategies {
		stratSum += v
	}
	if diff := math.Abs(stratSum - out.EnergyJ); diff > ulp {
		t.Errorf("strategy ledger %v vs machine %v: diff %g", stratSum, out.EnergyJ, diff)
	}
	if err := WriteEnergyReport(&buf, nil); err == nil {
		t.Fatal("WriteEnergyReport(nil observer) should error")
	}
}
