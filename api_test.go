package energysssp

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestAlgorithmStringsRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{Dijkstra, BellmanFord, DeltaStepping, NearFar, SelfTuning} {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip %v: %v %v", a, back, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm String")
	}
	// Short names.
	for s, want := range map[string]Algorithm{"nf": NearFar, "st": SelfTuning, "bf": BellmanFord, "ds": DeltaStepping} {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Fatalf("short name %q: %v %v", s, got, err)
		}
	}
}

func TestParseFreq(t *testing.T) {
	f, err := ParseFreq("852/924")
	if err != nil || f.CoreMHz != 852 || f.MemMHz != 924 {
		t.Fatalf("ParseFreq: %v %v", f, err)
	}
	for _, bad := range []string{"852", "a/b", "852/924/1", ""} {
		if _, err := ParseFreq(bad); err == nil {
			t.Fatalf("bad freq %q accepted", bad)
		}
	}
}

func TestRunAllAlgorithmsAgree(t *testing.T) {
	g := Grid(15, 15, 1, 40, 3)
	ref, err := Run(g, 0, RunConfig{Algorithm: Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BellmanFord, DeltaStepping, NearFar, SelfTuning} {
		cfg := RunConfig{Algorithm: algo, Workers: 4, SetPoint: 100}
		out, err := Run(g, 0, cfg)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for v := range out.Dist {
			if out.Dist[v] != ref.Dist[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", algo, v, out.Dist[v], ref.Dist[v])
			}
		}
	}
}

func TestRunWithDeviceAndInstrumentation(t *testing.T) {
	g := CalLike(0.001, 7)
	out, err := Run(g, 0, RunConfig{
		Algorithm: SelfTuning, SetPoint: 128,
		Device: "TK1", Freq: "852/924",
		Profile: true, PowerTrace: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.SimTime <= 0 || out.EnergyJ <= 0 {
		t.Fatalf("no simulation accounting: %+v", out.Result)
	}
	if out.Profile == nil || out.Profile.Len() != out.Iterations {
		t.Fatal("profile missing or wrong length")
	}
	if out.Parallelism == nil || out.Parallelism.N == 0 {
		t.Fatal("parallelism summary missing")
	}
	if out.Power == nil || out.Power.AvgWatts <= 0 {
		t.Fatal("power summary missing")
	}
}

func TestRunErrors(t *testing.T) {
	g := Grid(4, 4, 1, 9, 1)
	if _, err := Run(g, 0, RunConfig{Algorithm: Algorithm(42)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Run(g, 0, RunConfig{Device: "RTX"}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := Run(g, 0, RunConfig{Device: "TK1", Freq: "9/9"}); err == nil {
		t.Fatal("invalid freq accepted")
	}
	if _, err := Run(g, 0, RunConfig{PowerTrace: true}); err == nil {
		t.Fatal("PowerTrace without device accepted")
	}
	if _, err := Run(g, 0, RunConfig{Algorithm: SelfTuning}); err == nil {
		t.Fatal("SelfTuning without SetPoint accepted")
	}
	if _, err := Run(g, 99, RunConfig{}); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestGraphFactoriesAndIO(t *testing.T) {
	g, err := NewGraph(3, []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.gr")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	h, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("save/load changed graph")
	}
	if WikiLike(0.001, 1).NumVertices() == 0 || RMAT(6, 4, 1, 99, 1).NumVertices() != 64 {
		t.Fatal("generator factories broken")
	}
}

func TestControllerOverheadAPI(t *testing.T) {
	g := Grid(20, 20, 1, 50, 5)
	ctrl, total, err := ControllerOverhead(g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl <= 0 || total <= 0 || ctrl > total {
		t.Fatalf("overhead: ctrl=%v total=%v", ctrl, total)
	}
}

func TestRunWithPaths(t *testing.T) {
	g := Grid(10, 10, 1, 20, 4)
	out, err := Run(g, 0, RunConfig{Algorithm: SelfTuning, SetPoint: 64, Paths: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Parents == nil || out.Parents[0] != NoParent {
		t.Fatal("parent tree missing or source has a parent")
	}
	path, err := ShortestPath(out, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 99 {
		t.Fatalf("path: %v", path)
	}
	// Sum of gaps along the path equals the distance.
	var sum Dist
	for i := 1; i < len(path); i++ {
		sum += out.Dist[path[i]] - out.Dist[path[i-1]]
	}
	if sum != out.Dist[99] {
		t.Fatalf("path distance %d != %d", sum, out.Dist[99])
	}
	// Without Paths, ShortestPath must refuse.
	out2, _ := Run(g, 0, RunConfig{})
	if _, err := ShortestPath(out2, 5); err == nil {
		t.Fatal("ShortestPath without Paths accepted")
	}
}

func TestRunPowerCapped(t *testing.T) {
	g := CalLike(0.005, 5)
	out, pTrace, err := RunPowerCapped(g, 0, PowerCapConfig{CapWatts: 3.8}, "TK1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pTrace) == 0 {
		t.Fatal("no set-point trace")
	}
	if out.AvgPowerW <= 0 || out.AvgPowerW > 3.8*1.15 {
		t.Fatalf("avg power %.2f out of band", out.AvgPowerW)
	}
	if _, _, err := RunPowerCapped(g, 0, PowerCapConfig{CapWatts: 4}, "nope", 1); err == nil {
		t.Fatal("bad device accepted")
	}
}

func TestDevicesList(t *testing.T) {
	devs := Devices()
	if len(devs) != 2 || devs[0].Name != "TK1" || devs[1].Name != "TX1" {
		t.Fatalf("devices: %v", devs)
	}
}

func TestDeviceJSONAPI(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDevice(&buf, Devices()[0]); err != nil {
		t.Fatal(err)
	}
	dev, err := LoadDevice(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Name != "TK1" {
		t.Fatalf("device: %+v", dev)
	}
}

func TestTuneDeltaAPI(t *testing.T) {
	g := CalLike(0.002, 9)
	delta, err := TuneDelta(g, 0, "TK1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if delta < 1 {
		t.Fatalf("delta = %d", delta)
	}
	if _, err := TuneDelta(g, 0, "bogus", 1); err == nil {
		t.Fatal("bad device accepted")
	}
}

func TestP2PAPI(t *testing.T) {
	g := Grid(12, 12, 1, 30, 6)
	ref, err := Run(g, 0, RunConfig{Algorithm: Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []VID{5, 77, 143} {
		d1, err := QueryDijkstra(g, 0, target)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := QueryBidirectional(g, nil, 0, target)
		if err != nil {
			t.Fatal(err)
		}
		router, err := NewRouter(g, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		d3, err := router.Query(0, target)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Dist[target]
		if d1.Dist != want || d2.Dist != want || d3.Dist != want {
			t.Fatalf("t=%d: %d %d %d want %d", target, d1.Dist, d2.Dist, d3.Dist, want)
		}
	}
}

func TestKCoreAPI(t *testing.T) {
	g := RMAT(8, 6, 1, 9, 2)
	want := KCoreReference(g)
	for _, sp := range []int{0, 32} {
		res := KCore(g, sp, 2)
		for v := range want {
			if res.Coreness[v] != want[v] {
				t.Fatalf("setpoint %d: core[%d] = %d want %d", sp, v, res.Coreness[v], want[v])
			}
		}
		if res.Degeneracy <= 0 {
			t.Fatal("degeneracy")
		}
	}
}

func TestStudiesAPI(t *testing.T) {
	tab, err := ScalingStudy(ExperimentConfig{Seed: 3, Workers: 2}, []float64{0.001})
	if err != nil || len(tab.Rows) != 1 {
		t.Fatalf("scaling: %v %v", tab, err)
	}
	tab, err = StabilityStudy(ExperimentConfig{Scale: 0.001, Workers: 2}, []uint64{1, 2})
	if err != nil || len(tab.Rows) != 3 {
		t.Fatalf("stability: %v %v", tab, err)
	}
}

func TestPageRankAPI(t *testing.T) {
	g := RMAT(8, 6, 1, 99, 3)
	want := PageRankReference(g, 0.85, 1e-14, 5000)

	fixed, err := PageRank(g, PageRankConfig{Theta: 1e-7, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := PageRank(g, PageRankConfig{SetPoint: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []PageRankResult{fixed, tuned} {
		var diff float64
		for i := range want {
			d := res.Ranks[i] - want[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		if diff > 1e-6 {
			t.Fatalf("L1 diff from power iteration: %g", diff)
		}
	}
	if _, err := PageRank(g, PageRankConfig{SetPoint: 0.5}); err != nil {
		// SetPoint <= 0 selects fixed theta; 0.5 is positive but < 1 and
		// must be rejected by the self-tuning path.
		_ = err
	} else {
		t.Fatal("fractional set-point accepted")
	}
}

func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation suite")
	}
	tabs, err := Experiments(ExperimentConfig{Scale: 0.002, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) < 13 {
		t.Fatalf("tables = %d", len(tabs))
	}
}

// Relabeled runs must return results keyed by the caller's original vertex
// ids: identical distance vectors to an un-relabeled oracle run, and a
// parent tree that walks the original graph.
func TestRunRelabelOriginalIDs(t *testing.T) {
	g := WikiLike(0.003, 7)
	src := VID(3)
	ref, err := Run(g, src, RunConfig{Algorithm: Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []string{"degree", "bfs"} {
		for _, algo := range []Algorithm{Dijkstra, DeltaStepping, NearFar, SelfTuning} {
			out, err := Run(g, src, RunConfig{Algorithm: algo, Workers: 2, SetPoint: 64, Relabel: order})
			if err != nil {
				t.Fatalf("%s/%v: %v", order, algo, err)
			}
			for v := range out.Dist {
				if out.Dist[v] != ref.Dist[v] {
					t.Fatalf("%s/%v: dist[%d] = %d, want %d (results must map back to original ids)",
						order, algo, v, out.Dist[v], ref.Dist[v])
				}
			}
		}
	}
	// Paths ride on the mapped-back distances, so the tree is original-id.
	out, err := Run(g, src, RunConfig{Algorithm: NearFar, Relabel: "degree", Paths: true})
	if err != nil {
		t.Fatal(err)
	}
	target := VID(-1)
	for v := range out.Dist {
		if VID(v) != src && out.Dist[v] < Inf {
			target = VID(v)
		}
	}
	if target < 0 {
		t.Fatal("no reachable target")
	}
	path, err := ShortestPath(out, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 || path[0] != src || path[len(path)-1] != target {
		t.Fatalf("path: %v", path)
	}
	if _, err := Run(g, src, RunConfig{Relabel: "zigzag"}); err == nil {
		t.Fatal("unknown relabel order accepted")
	}
	if _, err := Run(g, VID(-4), RunConfig{Relabel: "degree"}); err == nil {
		t.Fatal("out-of-range source accepted for relabeling")
	}
}

// The FarQueue knob is plumbed through RunConfig; every strategy agrees
// with the oracle, and unknown names are rejected.
func TestRunFarQueueConfig(t *testing.T) {
	g := Grid(13, 13, 1, 30, 5)
	ref, err := Run(g, 0, RunConfig{Algorithm: Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	for _, fq := range []string{"auto", "flat", "lazy", "rho"} {
		for _, algo := range []Algorithm{DeltaStepping, NearFar} {
			out, err := Run(g, 0, RunConfig{Algorithm: algo, Workers: 2, FarQueue: fq})
			if err != nil {
				t.Fatalf("%s/%v: %v", fq, algo, err)
			}
			for v := range out.Dist {
				if out.Dist[v] != ref.Dist[v] {
					t.Fatalf("%s/%v: dist[%d] = %d, want %d", fq, algo, v, out.Dist[v], ref.Dist[v])
				}
			}
		}
	}
	if _, err := Run(g, 0, RunConfig{FarQueue: "bogus"}); err == nil {
		t.Fatal("unknown far-queue strategy accepted")
	}
}
