package energysssp

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

// flightRun performs one deterministic (single-threaded) self-tuning solve
// with a flight recorder attached and returns its log.
func flightRun(t *testing.T, seed uint64) *FlightLog {
	t.Helper()
	g := CalLike(0.01, seed)
	rec := NewFlightRecorder(1 << 16)
	out, err := Run(g, 0, RunConfig{
		Algorithm: SelfTuning,
		SetPoint:  200,
		Device:    "TK1",
		FlightLog: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := rec.Log()
	if len(l.Records) != out.Iterations {
		t.Fatalf("recorded %d iterations, run reports %d", len(l.Records), out.Iterations)
	}
	return l
}

// TestFlightAPI exercises the public surface end to end: record through
// Run, serialize, read back, replay bit-identically, diff two same-seed
// runs to zero divergence, and render the dashboard.
func TestFlightAPI(t *testing.T) {
	a := flightRun(t, 42)

	rep, err := ReplayFlight(a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("replay diverged: %+v", rep.Mismatches)
	}

	var buf bytes.Buffer
	if err := WriteFlightLog(&buf, a); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadFlightLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffFlightLogs(a, decoded); !d.Identical() {
		t.Fatalf("serialization changed the log: %+v", d)
	}

	// Two runs of the same deterministic configuration must diff clean.
	b := flightRun(t, 42)
	if d := DiffFlightLogs(a, b); !d.Identical() {
		t.Fatalf("same-seed runs diverged at iteration %d: %+v", d.FirstDivergence, d.Fields)
	}

	// A different input must be visibly different (guards against a diff
	// that trivially reports "identical").
	c := flightRun(t, 43)
	if d := DiffFlightLogs(a, c); d.Identical() {
		t.Fatal("different-seed runs reported identical")
	}

	_ = FlightFindings(a) // healthy runs usually yield none; must not panic

	var dash bytes.Buffer
	if err := WriteFlightDashboard(&dash, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dash.String(), "selftuning") {
		t.Fatalf("dashboard missing algorithm line:\n%s", dash.String())
	}
}

// TestFlightServedLive: when both an observer and a flight recorder are
// attached, the recorder streams at the observer's /flight endpoint.
func TestFlightServedLive(t *testing.T) {
	g := CalLike(0.005, 11)
	o := NewObserver(0)
	rec := NewFlightRecorder(0)
	if _, err := Run(g, 0, RunConfig{Algorithm: SelfTuning, SetPoint: 100, Obs: o, FlightLog: rec}); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeMetrics("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	resp, err := http.Get("http://" + srv.Addr() + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Error(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/flight status %d", resp.StatusCode)
	}
	l, err := ReadFlightLog(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/flight body not a flight log: %v", err)
	}
	if l.Header.Algorithm != "selftuning" || len(l.Records) == 0 {
		t.Fatalf("served log: algorithm=%q records=%d", l.Header.Algorithm, len(l.Records))
	}
}
