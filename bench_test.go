package energysssp

// One benchmark per table and figure in the paper's evaluation (plus
// solver microbenchmarks). Each BenchmarkTableN/BenchmarkFigureN run
// regenerates the corresponding result table at the default 1/8 scale;
// b.ReportMetric carries the headline quantity of that experiment so
// `go test -bench=.` output doubles as a results summary. cmd/experiments
// renders the same tables as CSV.

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"energysssp/internal/core"
	"energysssp/internal/gen"
	"energysssp/internal/harness"
	"energysssp/internal/metrics"
	"energysssp/internal/obs"
	"energysssp/internal/parallel"
	"energysssp/internal/sim"
	"energysssp/internal/sssp"
)

// runTunedAblation runs the self-tuning solver with or without the Eq. 7
// far-queue partitioning (the flat variant scans the whole far queue).
func runTunedAblation(g *Graph, src VID, p float64, disable bool, mach *sim.Machine, prof *metrics.Profile) (Result, error) {
	return core.Solve(g, src, core.Config{P: p, DisablePartitioning: disable},
		&sssp.Options{Machine: mach, Profile: prof})
}

var (
	benchEnvOnce sync.Once
	benchEnv     *harness.Env
)

// env returns the shared experiment environment (graphs and best-delta
// sweeps are cached across benchmarks).
func env() *harness.Env {
	benchEnvOnce.Do(func() {
		benchEnv = harness.NewEnv(harness.DefaultConfig())
	})
	return benchEnv
}

func parseBenchF(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// BenchmarkTable1 regenerates the dataset-characteristics table.
func BenchmarkTable1(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Table1(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseBenchF(b, tab.Rows[0][1]), "wiki-nodes")
		b.ReportMetric(parseBenchF(b, tab.Rows[1][1]), "cal-nodes")
	}
}

// BenchmarkFigure1 regenerates the concurrency-profile comparison
// (baseline vs self-tuning on the scale-free input).
func BenchmarkFigure1(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tabs, err := harness.Figure1(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tabs[0].Rows)), "profile-points")
	}
}

// BenchmarkFigure2 regenerates the delta-versus-parallelism sweep.
func BenchmarkFigure2(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure2(e)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: the parallelism growth factor across the sweep (Cal).
		var first, last float64
		for _, r := range tab.Rows {
			if r[0] != "Cal" {
				continue
			}
			if first == 0 {
				first = parseBenchF(b, r[2])
			}
			last = parseBenchF(b, r[2])
		}
		b.ReportMetric(last/first, "cal-parallelism-growth")
	}
}

// BenchmarkFigure3 regenerates the Cal performance-versus-delta study.
func BenchmarkFigure3(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tabs, err := harness.Figure3(e)
		if err != nil {
			b.Fatal(err)
		}
		summary := tabs[0]
		first := parseBenchF(b, summary.Rows[0][2])
		last := parseBenchF(b, summary.Rows[len(summary.Rows)-1][2])
		b.ReportMetric(first/last, "iteration-reduction")
	}
}

// BenchmarkFigure5 regenerates the parallelism-distribution comparison.
func BenchmarkFigure5(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure5(e)
		if err != nil {
			b.Fatal(err)
		}
		base := parseBenchF(b, tab.Rows[0][2])
		mid := parseBenchF(b, tab.Rows[2][2])
		b.ReportMetric(mid/base, "median-uplift-midP")
	}
}

// BenchmarkFigure6 regenerates the TK1 performance/power grid (Cal+Wiki).
func BenchmarkFigure6(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tabs, err := harness.Figure6(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bestTunedSpeedup(b, tabs[0]), "cal-best-tuned-speedup")
		b.ReportMetric(bestTunedSpeedup(b, tabs[1]), "wiki-best-tuned-speedup")
	}
}

// BenchmarkFigure7 regenerates the TX1 performance/power grid (Cal+Wiki).
func BenchmarkFigure7(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tabs, err := harness.Figure7(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bestTunedSpeedup(b, tabs[0]), "cal-best-tuned-speedup")
		b.ReportMetric(bestTunedSpeedup(b, tabs[1]), "wiki-best-tuned-speedup")
	}
}

// bestTunedSpeedup extracts the best self-tuning speedup at the automatic
// DVFS setting (comparable to the baseline reference at auto).
func bestTunedSpeedup(b *testing.B, tab *Table) float64 {
	best := 0.0
	for _, r := range tab.Rows {
		if r[0] == "near+far" || r[1] != "auto" {
			continue
		}
		if s := parseBenchF(b, r[2]); s > best {
			best = s
		}
	}
	return best
}

// BenchmarkFigure8 regenerates the power-versus-set-point sweep.
func BenchmarkFigure8(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure8(e)
		if err != nil {
			b.Fatal(err)
		}
		var lo, hi float64
		for _, r := range tab.Rows {
			if r[0] != "Cal" {
				continue
			}
			w := parseBenchF(b, r[2])
			if lo == 0 {
				lo = w
			}
			hi = w
		}
		b.ReportMetric(hi-lo, "cal-watt-swing")
	}
}

// BenchmarkOverhead regenerates the Section 5.2 controller-overhead
// measurement.
func BenchmarkOverhead(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Overhead(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseBenchF(b, tab.Rows[0][4]), "cal-ctrl-us-per-s")
		b.ReportMetric(parseBenchF(b, tab.Rows[1][4]), "wiki-ctrl-us-per-s")
	}
}

// ---- Solver microbenchmarks (host wall-clock performance of the Go
// implementation itself, one graph edge-scale per op) ----

func benchSolver(b *testing.B, algo Algorithm, d gen.Dataset, setPoint float64) {
	e := env()
	g := e.Graph(d)
	src := e.Source(d)
	pool := parallel.NewPool(0)
	defer pool.Close()
	opt := &sssp.Options{Pool: pool}
	b.SetBytes(int64(g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		switch algo {
		case Dijkstra:
			_, err = sssp.Dijkstra(g, src, nil)
		case BellmanFord:
			_, err = sssp.BellmanFord(g, src, opt)
		case DeltaStepping:
			_, err = sssp.DeltaStepping(g, src, Dist(g.AvgWeight()), opt)
		case NearFar:
			_, err = sssp.NearFar(g, src, e.BestDelta(d, sim.TK1()), opt)
		case SelfTuning:
			out, err2 := Run(g, src, RunConfig{Algorithm: SelfTuning, SetPoint: setPoint, Workers: -1})
			err = err2
			_ = out
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstraCal(b *testing.B)      { benchSolver(b, Dijkstra, gen.Cal, 0) }
func BenchmarkBellmanFordCal(b *testing.B)   { benchSolver(b, BellmanFord, gen.Cal, 0) }
func BenchmarkDeltaSteppingCal(b *testing.B) { benchSolver(b, DeltaStepping, gen.Cal, 0) }
func BenchmarkNearFarCal(b *testing.B)       { benchSolver(b, NearFar, gen.Cal, 0) }
func BenchmarkSelfTuningCal(b *testing.B)    { benchSolver(b, SelfTuning, gen.Cal, 2500) }
func BenchmarkNearFarWiki(b *testing.B)      { benchSolver(b, NearFar, gen.Wiki, 0) }
func BenchmarkSelfTuningWiki(b *testing.B)   { benchSolver(b, SelfTuning, gen.Wiki, 75000) }

// BenchmarkFarQueue compares the three far-queue strategies head to head on
// the two dataset substitutes, at each graph's tuned δ*. flat is the paper's
// compact-and-rescan array, lazy adds bucketed lazy deletion behind the same
// fixed-δ schedule, and rho replaces the schedule with adaptive bucket-batch
// extraction (ρ-stepping). The flat/cal lane is the committed baseline the
// perfgate improvement claim for BenchmarkNearFarCal is measured against.
func BenchmarkFarQueue(b *testing.B) {
	e := env()
	strategies := []sssp.FarQueueStrategy{sssp.FarFlat, sssp.FarLazy, sssp.FarRho}
	for _, d := range []gen.Dataset{gen.Cal, gen.Wiki} {
		g := e.Graph(d)
		src := e.Source(d)
		delta := e.BestDelta(d, sim.TK1())
		for _, s := range strategies {
			b.Run(fmt.Sprintf("%s/%s", d, s), func(b *testing.B) {
				pool := parallel.NewPool(0)
				defer pool.Close()
				opt := &sssp.Options{Pool: pool, FarQueue: s}
				b.SetBytes(int64(g.NumEdges()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sssp.NearFar(g, src, delta, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkNearFarCalRelabeled is the memory-layout half of the far-queue
// work: the identical solve as BenchmarkNearFarCal but on the degree-ordered
// relabeling of the graph (hot hub rows first, so the advance kernel's
// dist[] and CSR accesses concentrate in warm cache lines). Simulated
// figures are invariant under relabeling; the delta to BenchmarkNearFarCal
// is pure host locality.
func BenchmarkNearFarCalRelabeled(b *testing.B) {
	e := env()
	g := e.Graph(gen.Cal)
	perm := g.DegreeOrder()
	rg, err := g.Relabel(perm)
	if err != nil {
		b.Fatal(err)
	}
	src := perm[e.Source(gen.Cal)]
	delta := e.BestDelta(gen.Cal, sim.TK1())
	pool := parallel.NewPool(0)
	defer pool.Close()
	opt := &sssp.Options{Pool: pool}
	b.SetBytes(int64(rg.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sssp.NearFar(rg, src, delta, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAdvance measures one steady-state advance over the full reachable
// frontier (distances pre-converged, so the pass scans every frontier edge
// without mutating state — a repeatable, constant-work iteration). SetBytes
// carries the frontier edge count, so MB/s reads as relaxed edges per
// microsecond; allocs/op must stay 0 once warmed (see
// TestAdvanceSteadyStateAllocs for the hard gate).
func benchAdvance(b *testing.B, g *Graph, workers int, strat sssp.Strategy, o *obs.Observer) {
	pool := parallel.NewPool(workers)
	defer pool.Close()
	res, err := sssp.BellmanFord(g, 0, &sssp.Options{Pool: pool})
	if err != nil {
		b.Fatal(err)
	}
	dist := res.Dist
	kn := sssp.NewKernels(g, pool, nil, dist)
	defer kn.Release()
	kn.Force = strat
	sc := o.NewScope("bench") // nil observer hands out a nil (no-op) scope
	defer sc.Close()
	kn.Observe(sc)
	front := make([]VID, 0, g.NumVertices())
	var edges int64
	for v := 0; v < g.NumVertices(); v++ {
		if dist[v] < Inf {
			front = append(front, VID(v))
			edges += int64(g.OutDegree(VID(v)))
		}
	}
	kn.Advance(front) // warm the scratch buffers to their high-water mark
	b.SetBytes(edges)
	b.ReportAllocs()
	// Collect setup garbage (graph generation, BellmanFord) before timing:
	// otherwise the first sub-benchmark pays the GC debt inside its window,
	// skewing A/B pairs like BenchmarkObsAdvance.
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.Advance(front)
	}
}

// BenchmarkAdvance compares the vertex-dynamic, edge-balanced, and adaptive
// advance schedules on the two canonical degree shapes: a hub-heavy
// scale-free graph (where edge balancing pays) and a near-uniform road grid
// (where vertex chunking is already balanced and cheaper to set up).
func BenchmarkAdvance(b *testing.B) {
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"rmat", gen.RMAT(14, 16, 0.57, 0.19, 0.19, 1, 99, 21)},
		{"road", gen.Road(180, 180, 0.1, 1, 100, 21)},
	}
	strategies := []struct {
		name  string
		strat sssp.Strategy
	}{
		{"vertex", sssp.StrategyVertex},
		{"edge", sssp.StrategyEdge},
		{"auto", sssp.StrategyAuto},
	}
	for _, gc := range graphs {
		for _, workers := range []int{1, 4} {
			for _, sc := range strategies {
				b.Run(fmt.Sprintf("%s/p%d/%s", gc.name, workers, sc.name), func(b *testing.B) {
					benchAdvance(b, gc.g, workers, sc.strat, nil)
				})
			}
		}
	}
}

// BenchmarkObsAdvance measures the observability overhead head to head: the
// same steady-state advance with observability off and with a full observer
// attached (phase tracer, counters, X2 histogram). The budget the release
// gate watches is < 5% ns/op on the hub-heavy input at pool 4.
func BenchmarkObsAdvance(b *testing.B) {
	g := gen.RMAT(14, 16, 0.57, 0.19, 0.19, 1, 99, 21)
	b.Run("rmat/p4/off", func(b *testing.B) {
		benchAdvance(b, g, 4, sssp.StrategyAuto, nil)
	})
	b.Run("rmat/p4/on", func(b *testing.B) {
		benchAdvance(b, g, 4, sssp.StrategyAuto, obs.New(obs.DefaultTraceEvents))
	})
}

// benchSpanAdvance measures a driver-shaped iteration: the same steady-state
// advance as benchAdvance, but each op additionally opens and closes an
// iteration span, records a kernel mark, and publishes live solve stats —
// the full per-iteration span traffic a real solver generates. Compared
// against the off leg (identical loop, no scope), the delta prices the
// hierarchical tracer itself.
func benchSpanAdvance(b *testing.B, g *Graph, o *obs.Observer) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	res, err := sssp.BellmanFord(g, 0, &sssp.Options{Pool: pool})
	if err != nil {
		b.Fatal(err)
	}
	dist := res.Dist
	kn := sssp.NewKernels(g, pool, nil, dist)
	defer kn.Release()
	kn.Force = sssp.StrategyAuto
	sc := o.NewScope("spanbench")
	defer sc.Close()
	kn.Observe(sc)
	tr := kn.Trace()
	front := make([]VID, 0, g.NumVertices())
	var edges int64
	for v := 0; v < g.NumVertices(); v++ {
		if dist[v] < Inf {
			front = append(front, VID(v))
			edges += int64(g.OutDegree(VID(v)))
		}
	}
	spSolve := tr.BeginSolve()
	defer func() { spSolve.End(0) }()
	cycle := func(i int) {
		spIter := tr.BeginIter(i)
		adv := kn.Advance(front)
		tr.Mark(obs.PhaseRebalance, int64(len(front)), 0, 0)
		sc.Live().Iteration(int64(i), int64(len(front)), 0, int64(adv.X2), 0, 0)
		spIter.End(int64(adv.X2))
	}
	cycle(0) // warm the first span slab and scratch high-water marks
	b.SetBytes(edges)
	b.ReportAllocs()
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(i)
	}
}

// BenchmarkSpanAdvance is the release gate's off/on pair for the
// hierarchical span tracer (perfgate budget: on within 5% of off ns/op on
// the hub-heavy input at pool 4). The off leg runs the identical
// driver-shaped loop against a nil scope, so every span call hits the
// nil-safe fast path and the pair isolates slab recording cost alone.
func BenchmarkSpanAdvance(b *testing.B) {
	g := gen.RMAT(14, 16, 0.57, 0.19, 0.19, 1, 99, 21)
	b.Run("rmat/p4/off", func(b *testing.B) {
		benchSpanAdvance(b, g, nil)
	})
	b.Run("rmat/p4/on", func(b *testing.B) {
		benchSpanAdvance(b, g, obs.New(obs.DefaultTraceEvents))
	})
}

// BenchmarkFlightAdvance measures the flight-recorder overhead head to
// head: the same sequential self-tuning solve without and with a recorder
// attached (the recorder is reused across ops, as a long-lived service
// would hold it, so its ring allocation is not charged to the op). The
// pair rides scripts/bench.sh into the perf trajectory, where perfgate
// watches the on/off gap the same way it watches BenchmarkObsAdvance.
func BenchmarkFlightAdvance(b *testing.B) {
	g := CalLike(0.02, 42)
	cfg := RunConfig{Algorithm: SelfTuning, SetPoint: 500, Workers: 1}
	run := func(b *testing.B, cfg RunConfig) {
		b.SetBytes(int64(g.NumEdges()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(g, 0, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cal/p1/off", func(b *testing.B) { run(b, cfg) })
	b.Run("cal/p1/on", func(b *testing.B) {
		on := cfg
		on.FlightLog = NewFlightRecorder(0)
		run(b, on)
	})
}

// BenchmarkBatchNearFar measures many-source batch throughput, the workload
// the pooled per-solve scratch exists for (allocs/op is the headline here).
func BenchmarkBatchNearFar(b *testing.B) {
	g := gen.RMAT(12, 8, 0.57, 0.19, 0.19, 1, 99, 23)
	sources := make([]VID, 32)
	for i := range sources {
		sources[i] = VID(i * 127 % g.NumVertices())
	}
	b.SetBytes(int64(g.NumEdges()) * int64(len(sources)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sssp.FirstError(sssp.BatchNearFar(g, sources, 25, 4)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageRank measures the Section 6 PageRank generalization at a
// controlled set-point on the scale-free input.
func BenchmarkPageRankControlled(b *testing.B) {
	g := WikiLike(0.01, 42)
	b.SetBytes(int64(g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := PageRank(g, PageRankConfig{SetPoint: 512, Workers: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Pushes), "pushes")
	}
}

// BenchmarkKCore measures the Section 6 k-core generalization.
func BenchmarkKCoreControlled(b *testing.B) {
	g := WikiLike(0.01, 42)
	b.SetBytes(int64(g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := KCore(g, 512, -1)
		b.ReportMetric(float64(res.Degeneracy), "degeneracy")
	}
}

// BenchmarkRouting measures point-to-point query latency on the road
// network: plain Dijkstra versus the ALT index.
func BenchmarkRoutingDijkstra(b *testing.B) {
	g := CalLike(0.02, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QueryDijkstra(g, 0, VID(g.NumVertices()-1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutingALT(b *testing.B) {
	g := CalLike(0.02, 42)
	router, err := NewRouter(g, 8, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := router.Query(0, VID(g.NumVertices()-1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLearningRate compares the adaptive vSGD controller with
// a fixed-learning-rate variant by measuring how close each holds the
// achieved median parallelism to the set-point (see DESIGN.md, ablations).
func BenchmarkAblationPartitioning(b *testing.B) {
	e := env()
	g := e.Graph(gen.Cal)
	src := e.Source(gen.Cal)
	p := e.SetPoints(gen.Cal)[1]
	for i := 0; i < b.N; i++ {
		for _, disable := range []bool{false, true} {
			var prof metrics.Profile
			mach := sim.NewMachine(sim.TK1())
			_, err := runTunedAblation(g, src, p, disable, mach, &prof)
			if err != nil {
				b.Fatal(err)
			}
			// End-to-end simulated time barely moves at bench scale; the
			// structural benefit of Eq. 7 partitioning is the far-queue
			// scan volume, so report that alongside.
			label := "partitioned"
			if disable {
				label = "flat"
			}
			b.ReportMetric(mach.Now().Seconds()*1e3, label+"-sim-ms")
			b.ReportMetric(float64(mach.Stats(sim.KernelFarQueue).Items), label+"-scans")
		}
	}
}
