package energysssp_test

import (
	"fmt"

	energysssp "energysssp"
)

// The minimal workflow: generate a graph, solve with the self-tuning
// algorithm, read a distance.
func ExampleRun() {
	g := energysssp.Grid(8, 8, 5, 5, 1) // all weights 5
	out, err := energysssp.Run(g, 0, energysssp.RunConfig{
		Algorithm: energysssp.SelfTuning,
		SetPoint:  32,
	})
	if err != nil {
		panic(err)
	}
	// Corner to corner of an 8x8 grid: 14 hops of weight 5.
	fmt.Println(out.Dist[63])
	// Output: 70
}

// Attaching a simulated device yields deterministic time/energy numbers.
func ExampleRun_simulated() {
	g := energysssp.Grid(16, 16, 1, 9, 2)
	out, err := energysssp.Run(g, 0, energysssp.RunConfig{
		Algorithm: energysssp.NearFar,
		Delta:     8,
		Device:    "TK1",
		Freq:      "852/924",
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(out.SimTime > 0, out.EnergyJ > 0, out.Reached)
	// Output: true true 256
}

// Shortest paths are derived from any solver's distances.
func ExampleShortestPath() {
	g, _ := energysssp.NewGraph(4, []energysssp.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 0, V: 3, W: 10},
	})
	out, err := energysssp.Run(g, 0, energysssp.RunConfig{Paths: true})
	if err != nil {
		panic(err)
	}
	path, _ := energysssp.ShortestPath(out, 3)
	fmt.Println(path, out.Dist[3])
	// Output: [0 1 2 3] 3
}

// ParseFreq understands the paper's "core/mem" DVFS notation.
func ExampleParseFreq() {
	f, _ := energysssp.ParseFreq("852/924")
	fmt.Println(f.CoreMHz, f.MemMHz, f)
	// Output: 852 924 852/924
}

// The PageRank extension applies the same set-point control to another
// frontier primitive.
func ExamplePageRank() {
	g := energysssp.RMAT(7, 4, 1, 9, 3)
	res, err := energysssp.PageRank(g, energysssp.PageRankConfig{SetPoint: 32})
	if err != nil {
		panic(err)
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	fmt.Printf("mass conserved: %t\n", sum+res.ResidualL1 > 0.999)
	// Output: mass conserved: true
}
